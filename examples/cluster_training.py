"""Cluster training tour: heavy tails, a crash, and a bit-for-bit resume.

Trains a small classifier with closed-loop YellowFin on an 8-worker
simulated cluster where:

- compute+transit times are **Pareto heavy-tailed** (alpha=1.5: finite
  mean, infinite variance — rare dispatches take 10-100x the median),
  so staleness is bursty instead of the paper's fixed ``workers - 1``;
- worker 3 **crashes** mid-run (its in-flight gradient is lost) and
  rejoins after a downtime;
- at the halfway point the run is **checkpointed to disk, thrown away,
  and restored** into a fresh process-worth of objects — and finishes
  bit-for-bit identical to an uninterrupted reference run.

Run:

    python examples/cluster_training.py
"""

import os
import tempfile

import numpy as np

from repro import nn
from repro.autograd import Tensor, functional as F
from repro.cluster import (FaultInjector, ParetoDelay,
                           WorkerCrash, load_cluster_checkpoint,
                           restore_cluster, save_cluster_checkpoint)
from repro.run import build_cluster
from repro.core import ClosedLoopYellowFin
from repro.data import BatchLoader
from repro.sim import staleness_histogram, staleness_summary

WORKERS = 8
READS = 600
CHECKPOINT_AT = 300


class Workload:
    """Checkpointable loss closure: model + seeded minibatch stream."""

    def __init__(self, model, loader):
        self.model = model
        self.loader = loader

    def __call__(self):
        xb, yb = self.loader.next_batch()
        return F.cross_entropy(self.model(Tensor(xb)), yb)

    def state_dict(self):
        return self.loader.state_dict()

    def load_state_dict(self, state):
        self.loader.load_state_dict(state)


def build():
    """Fresh model + optimizer + runtime, identically configured."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=(512, 8))
    w_true = rng.normal(size=8)
    y = (x @ w_true + 0.3 * rng.normal(size=512) > 0).astype(int)
    model = nn.Sequential(nn.Linear(8, 24, seed=0), nn.ReLU(),
                          nn.Linear(24, 2, seed=1))
    workload = Workload(model, BatchLoader(x, y, batch_size=32, seed=2))
    opt = ClosedLoopYellowFin(model.parameters(), staleness=WORKERS - 1,
                              gamma=0.01, window=5, beta=0.99, fused=True)
    faults = FaultInjector(
        scheduled=[WorkerCrash(worker=3, time=60.0, downtime=30.0)])
    runtime = build_cluster(
        model, opt, workload, workers=WORKERS,
        delay_model=ParetoDelay(alpha=1.5, scale=0.5, seed=7),
        num_shards=4, faults=faults)
    return model, runtime, workload


def flat(model):
    return np.concatenate([p.data.reshape(-1) for p in model.parameters()])


def main():
    print(f"{WORKERS} workers, Pareto(alpha=1.5) delays, "
          f"scheduled crash of worker 3 at t=60\n")

    # ---- reference: one uninterrupted run ------------------------- #
    model_ref, rt_ref, _ = build()
    rt_ref.run(reads=READS)

    # ---- interrupted: run half, checkpoint, restore, finish ------- #
    _, rt_half, wl_half = build()
    rt_half.run(reads=CHECKPOINT_AT)
    path = os.path.join(tempfile.gettempdir(), "cluster_ckpt.json")
    save_cluster_checkpoint(rt_half, path, workload=wl_half)
    size_kb = os.path.getsize(path) / 1024
    print(f"checkpoint at read {CHECKPOINT_AT} -> {path} "
          f"({size_kb:.0f} KiB); discarding the live run...")
    del rt_half, wl_half

    model_res, rt_res, wl_res = build()   # fresh objects, same config
    restore_cluster(rt_res, load_cluster_checkpoint(path),
                    workload=wl_res)
    rt_res.run(reads=READS)

    # ---- compare -------------------------------------------------- #
    losses_ref = rt_ref.log.series("loss")
    losses_res = rt_res.log.series("loss")
    identical = (losses_ref.tolist() == losses_res.tolist()
                 and np.array_equal(flat(model_ref), flat(model_res)))
    print(f"resumed run bit-for-bit identical to uninterrupted run: "
          f"{identical}\n")

    summary = staleness_summary(rt_ref.log)
    print(f"staleness under heavy-tailed delays (tau would be "
          f"{WORKERS - 1} in the paper's protocol):")
    print(f"  mean={summary['mean']:.2f}  median={summary['median']:.0f}  "
          f"p95={summary['p95']:.0f}  max={summary['max']:.0f}")

    hist = staleness_histogram(rt_ref.log)
    print("\nper-worker commits (worker 3 lost one gradient to the crash):")
    for stats in rt_ref.worker_stats():
        wid = stats["worker"]
        commits = sum(hist.get(wid, {}).values())
        note = "  <- crashed & rejoined" if stats["crashes"] else ""
        print(f"  worker {wid}: reads={stats['reads']:>3} "
              f"commits={commits:>3} crashes={stats['crashes']}{note}")

    print(f"\nfinal loss (avg last 50 reads): "
          f"{losses_ref[-50:].mean():.4f}")
    os.remove(path)


if __name__ == "__main__":
    main()
