"""Quickstart: YellowFin as a drop-in, tuning-free optimizer.

Trains a small MLP classifier three ways — YellowFin (no hyperparameters),
hand-tuned momentum SGD, and Adam — and prints the loss trajectories side
by side.  Run:

    python examples/quickstart.py
"""

import numpy as np

from repro import Adam, MomentumSGD, YellowFin, nn
from repro.autograd import Tensor, functional as F


def make_data(seed: int = 0, n: int = 256):
    """Two-moons-ish binary problem: nonlinear, noisy, learnable."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 2))
    y = ((x[:, 0] ** 2 + x[:, 1]) > 0.5).astype(int)
    x += 0.1 * rng.normal(size=x.shape)
    return x, y


def make_model(seed: int = 0) -> nn.Module:
    return nn.Sequential(
        nn.Linear(2, 32, seed=seed), nn.ReLU(),
        nn.Linear(32, 32, seed=seed + 1), nn.ReLU(),
        nn.Linear(32, 2, seed=seed + 2))


def train(optimizer_name: str, steps: int = 300):
    x, y = make_data()
    model = make_model()
    if optimizer_name == "yellowfin":
        opt = YellowFin(model.parameters())           # zero knobs
    elif optimizer_name == "momentum_sgd":
        opt = MomentumSGD(model.parameters(), lr=0.1, momentum=0.9)
    elif optimizer_name == "adam":
        opt = Adam(model.parameters(), lr=0.01)
    else:
        raise ValueError(optimizer_name)

    losses = []
    for step in range(steps):
        model.zero_grad()
        loss = F.cross_entropy(model(Tensor(x)), y)
        loss.backward()
        opt.step()
        losses.append(float(loss.data))
    return losses, opt


def main():
    steps = 300
    results = {}
    for name in ("yellowfin", "momentum_sgd", "adam"):
        losses, opt = train(name, steps)
        results[name] = losses
        extra = ""
        if isinstance(opt, YellowFin):
            stats = opt.stats()
            extra = (f"  [auto-tuned lr={stats['lr']:.4f}, "
                     f"momentum={stats['momentum']:.4f}]")
        print(f"{name:>14}: loss {losses[0]:.4f} -> {losses[-1]:.4f}{extra}")

    print("\nloss at checkpoints (iteration: yellowfin / momentum_sgd / adam)")
    for step in (0, 50, 100, 200, steps - 1):
        row = " / ".join(f"{results[n][step]:.4f}"
                         for n in ("yellowfin", "momentum_sgd", "adam"))
        print(f"  iter {step:>4}: {row}")


if __name__ == "__main__":
    main()
