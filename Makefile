# Developer entry points. Everything assumes the in-tree layout
# (PYTHONPATH=src); `pip install -e .` works too.

PYTEST := PYTHONPATH=src python -m pytest

.PHONY: test tier1 doc-coverage bench bench-smoke cluster-smoke example \
	cluster-example

test:  ## fast unit tests only
	$(PYTEST) tests -q

tier1:  ## the full tier-1 gate: unit tests + benchmark suite
	$(PYTEST) -x -q

doc-coverage:  ## public-API docstring gate for repro.optim / repro.sim
	$(PYTEST) tests/test_doc_coverage.py -q

bench:  ## full benchmark suite (writes BENCH_*.json perf records)
	$(PYTEST) benchmarks -q -s

bench-smoke:  ## fig01 headline workload through the repro.bench harness, <60s
	REPRO_BENCH_SCALE=0.25 $(PYTEST) \
	    "benchmarks/test_fig01_headline.py::test_fig01_fused_speedup" -q -s

cluster-smoke:  ## cluster runtime, faults, and bit-for-bit checkpoint gate, <60s
	$(PYTEST) tests/test_cluster_runtime.py tests/test_cluster_faults.py \
	    tests/test_cluster_checkpoint.py -q
	REPRO_BENCH_SCALE=0.25 REPRO_BENCH_DIR=$${TMPDIR:-/tmp} $(PYTEST) \
	    benchmarks/test_cluster_scenarios.py -q -s

example:  ## sharded + fused async-training tour
	PYTHONPATH=src python examples/async_training.py

cluster-example:  ## heavy-tail delays + crash + checkpoint/resume tour
	PYTHONPATH=src python examples/cluster_training.py
