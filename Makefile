# Developer entry points. Everything assumes the in-tree layout
# (PYTHONPATH=src); `pip install -e .` works too.

PYTEST := PYTHONPATH=src python -m pytest

.PHONY: test tier1 doc-coverage bench bench-smoke cluster-smoke \
	matrix-smoke vec-smoke api-smoke mp-smoke obs-smoke serve-smoke \
	fleet-smoke lazy-smoke perf-gate example cluster-example \
	matrix-example

test:  ## fast unit tests only
	$(PYTEST) tests -q

tier1:  ## the full tier-1 gate: unit tests + benchmark suite
	$(PYTEST) -x -q

doc-coverage:  ## public-API docstring gate for repro.optim / repro.sim
	$(PYTEST) tests/test_doc_coverage.py -q

bench:  ## full benchmark suite (writes BENCH_*.json perf records)
	$(PYTEST) benchmarks -q -s

bench-smoke:  ## fig01 headline workload through the repro.bench harness, <60s
	REPRO_BENCH_SCALE=0.25 REPRO_BENCH_DIR=$${TMPDIR:-/tmp} $(PYTEST) \
	    "benchmarks/test_fig01_headline.py::test_fig01_fused_speedup" -q -s

cluster-smoke:  ## cluster runtime, faults, and bit-for-bit checkpoint gate, <60s
	$(PYTEST) tests/test_cluster_runtime.py tests/test_cluster_faults.py \
	    tests/test_cluster_checkpoint.py -q
	REPRO_BENCH_SCALE=0.25 REPRO_BENCH_DIR=$${TMPDIR:-/tmp} $(PYTEST) \
	    benchmarks/test_cluster_scenarios.py -q -s

matrix-smoke:  ## repro.xp orchestration gate: specs, runner, cache, CLI, <60s
	$(PYTEST) tests/test_xp_spec.py tests/test_xp_runner_cache.py \
	    tests/test_xp_cli.py tests/test_xp_compare.py -q
	PYTHONPATH=src python -m repro list examples/scenario_matrix.json
	@cache=$$(mktemp -d); status=0; \
	PYTHONPATH=src python -m repro run examples/scenario_matrix.json \
	    --jobs 2 --cache $$cache && \
	PYTHONPATH=src python -m repro run examples/scenario_matrix.json \
	    --jobs 2 --cache $$cache || status=$$?; \
	rm -rf $$cache; exit $$status

api-smoke:  ## unified-API gate: one spec through all five backends, records diffed, <60s
	$(PYTEST) tests/test_run_backends.py tests/test_run_api.py \
	    tests/test_registry.py tests/test_api_surface.py \
	    tests/test_deprecation_shims.py tests/test_repro_cli.py -q
	PYTHONPATH=src python -m repro bench examples/api_smoke.json \
	    --backends serial,cluster,parallel,vec,mp --check

mp-smoke:  ## real multi-process backend: transport properties + differential oracle at smoke scale, <60s hard cap
	PYTHONPATH=src timeout 60 python -m pytest \
	    tests/test_mp_transport.py -q
	PYTHONPATH=src timeout 60 python -m pytest \
	    tests/test_mp_differential.py -k smoke -q

obs-smoke:  ## repro.obs gate: tracing on/off bit-identity on every backend + Chrome-trace validator round-trip, <60s
	$(PYTEST) tests/test_obs_differential.py tests/test_obs_trace.py \
	    tests/test_obs_tracer.py tests/test_obs_metrics.py \
	    tests/test_sim_metrics.py -q

serve-smoke:  ## tuning service gate: daemon up, 2 tenants, batched + cached + quota-rejected, clean shutdown, <60s
	PYTHONPATH=src timeout 60 python -m pytest \
	    tests/test_serve_daemon.py tests/test_serve_scheduler.py -q
	PYTHONPATH=src timeout 60 python -m pytest \
	    tests/test_serve_differential.py tests/test_serve_concurrency.py -q

vec-smoke:  ## batched replicate engine: differential + property suites, 8-replicate speedup gate, <60s
	$(PYTEST) tests/test_vec_equivalence.py \
	    tests/test_property_serialization.py -q
	REPRO_BENCH_SCALE=0.25 REPRO_BENCH_DIR=$${TMPDIR:-/tmp} $(PYTEST) \
	    benchmarks/test_vec_replicates.py -q -s

fleet-smoke:  ## worker-axis engine: differential suite + quarter-scale 256-worker speedup gate, <60s
	$(PYTEST) tests/test_fleet_equivalence.py -q
	REPRO_BENCH_SCALE=0.25 REPRO_BENCH_DIR=$${TMPDIR:-/tmp} $(PYTEST) \
	    benchmarks/test_fleet_scale.py -q -s

lazy-smoke:  ## lazy engine: bit-identity differential + graph/run suites + quarter-scale fusion gate, <60s
	$(PYTEST) tests/test_lazy_differential.py tests/test_lazy_graph.py \
	    tests/test_lazy_run.py -q
	REPRO_BENCH_SCALE=0.25 REPRO_BENCH_DIR=$${TMPDIR:-/tmp} $(PYTEST) \
	    benchmarks/test_lazy_fusion.py -q -s

perf-gate:  ## full-scale smoke benches diffed against committed BENCH baselines; reports land in artifacts/
	@fresh=$$(mktemp -d); status=0; \
	mkdir -p artifacts; \
	REPRO_BENCH_DIR=$$fresh $(PYTEST) benchmarks/test_cluster_scenarios.py \
	    "benchmarks/test_fig01_headline.py::test_fig01_fused_speedup" \
	    benchmarks/test_vec_replicates.py \
	    benchmarks/test_mp_throughput.py \
	    benchmarks/test_obs_overhead.py \
	    benchmarks/test_serve_load.py \
	    benchmarks/test_fleet_scale.py \
	    benchmarks/test_lazy_fusion.py \
	    -q -s && \
	PYTHONPATH=src python -m repro diff --baseline . --fresh $$fresh \
	    --names cluster_scenarios,fig01,vec_replicates,mp_throughput,obs_overhead,serve,fleet_scale,lazy_fusion \
	    --report artifacts/perf_report.json \
	    || status=$$?; \
	cp $$fresh/BENCH_vec_replicates.json \
	    artifacts/replicate_statistics.json 2>/dev/null || true; \
	rm -rf $$fresh; exit $$status

example:  ## sharded + fused async-training tour
	PYTHONPATH=src python examples/async_training.py

cluster-example:  ## heavy-tail delays + crash + checkpoint/resume tour
	PYTHONPATH=src python examples/cluster_training.py

matrix-example:  ## scenario-matrix + result-cache + baseline-diff tour
	PYTHONPATH=src python examples/scenario_matrix.py
