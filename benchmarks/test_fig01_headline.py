"""Figure 1: YellowFin vs Adam on the CIFAR100-like ResNet, sync + async.

Paper: synchronously YellowFin converges in fewer iterations than tuned
Adam; under 16-worker asynchrony, closed-loop YellowFin is dramatically
faster than open-loop YellowFin and beats Adam.

This module also carries the headline *systems* measurement: the fused
YellowFin update kernel vs the per-tensor reference on the same model,
recorded by the ``repro.bench`` harness into ``BENCH_fig01.json``.
"""

import numpy as np

from repro.analysis.convergence import smooth_losses
from repro.bench import compare_benchmark
from repro.optim import Adam
from repro.tuning import run_workload, speedup_ratio
from benchmarks.workloads import (FULL_SCALE,
                                  cifar100_workload, closed_loop_yellowfin,
                                  print_series, yellowfin)

WORKERS = 16
SEEDS = (0,)
ADAM_LR = 1e-2  # best of the Appendix-I-style grid at this scale


def run_all():
    sync_wl = cifar100_workload(n_steps=400)
    async_wl = cifar100_workload(n_steps=500)

    sync = {
        "Adam": run_workload(sync_wl, lambda p: Adam(p, lr=ADAM_LR),
                             "adam", seeds=SEEDS),
        "YellowFin": run_workload(sync_wl, lambda p: yellowfin(p),
                                  "yf", seeds=SEEDS),
    }
    asyn = {
        "Adam": run_workload(async_wl, lambda p: Adam(p, lr=ADAM_LR),
                             "adam", seeds=SEEDS, async_workers=WORKERS),
        "YellowFin": run_workload(async_wl, lambda p: yellowfin(p),
                                  "yf", seeds=SEEDS, async_workers=WORKERS),
        "Closed-loop YF": run_workload(
            async_wl,
            lambda p: closed_loop_yellowfin(p, staleness=WORKERS - 1),
            "clyf", seeds=SEEDS, async_workers=WORKERS),
    }
    return sync, asyn, sync_wl, async_wl


def test_fig01_headline(benchmark):
    sync, asyn, sync_wl, async_wl = benchmark.pedantic(run_all, rounds=1,
                                                       iterations=1)

    w = sync_wl.smooth_window
    sync_curves = {k: smooth_losses(v.losses, w) for k, v in sync.items()}
    async_curves = {k: smooth_losses(v.losses, w) for k, v in asyn.items()}

    ticks = [0, 50, 100, 200, 300, sync_wl.steps - 1]
    print_series("Figure 1 (left): synchronous training loss", ticks,
                 sync_curves)
    ticks = [0, 100, 200, 300, 400, async_wl.steps - 1]
    print_series("Figure 1 (right): asynchronous training loss", ticks,
                 async_curves)

    yf_speedup, _ = speedup_ratio(sync["Adam"].losses,
                                  sync["YellowFin"].losses, smooth_window=w)
    cl_speedup, _ = speedup_ratio(asyn["Adam"].losses,
                                  asyn["Closed-loop YF"].losses,
                                  smooth_window=w)
    cl_vs_open, _ = speedup_ratio(asyn["YellowFin"].losses,
                                  asyn["Closed-loop YF"].losses,
                                  smooth_window=w)
    print(f"\nsync:  YellowFin vs Adam speedup          {yf_speedup:.2f}x")
    print(f"async: closed-loop YF vs Adam speedup     {cl_speedup:.2f}x")
    print(f"async: closed-loop vs open-loop YF        {cl_vs_open:.2f}x")

    # Reproduction checks (shape, not absolute numbers):
    # every run trains; asynchrony slows everyone down, so the async bar
    # is looser (staleness-15 on a 500-step budget).  Smoke scale only
    # checks the training direction — the halving bars and the Adam
    # ranking need the full budget (YellowFin spends its early steps
    # measuring).
    sync_bar, async_bar = (0.5, 0.75) if FULL_SCALE else (1.0, 1.0)
    for name, c in sync_curves.items():
        assert c[-1] < sync_bar * c[0], f"sync {name} failed to train"
    for name, c in async_curves.items():
        assert c[-1] < async_bar * c[0], f"async {name} failed to train"
    if FULL_SCALE:
        # the paper's async headline: both YellowFin variants converge
        # in fewer iterations than Adam under 16-worker asynchrony
        assert async_curves["Closed-loop YF"][-1] <= \
            async_curves["Adam"][-1] * 1.02
        assert async_curves["YellowFin"][-1] <= \
            async_curves["Adam"][-1] * 1.02
        # closed-loop YF is not slower than open-loop YF (the paper's
        # 20x gap appears at 30k+ iterations where open-loop
        # destabilizes; at this scale the two track each other — see
        # EXPERIMENTS.md)
        assert cl_vs_open >= 0.9


def test_fig01_fused_speedup():
    """Fused YellowFin kernel ≥2x the per-tensor hot path on the fig01
    model; timings and ratio land in BENCH_fig01.json."""
    wl = cifar100_workload()
    probe, _ = wl.build(seed=0)
    rng = np.random.default_rng(0)
    grads = [rng.normal(size=p.shape, scale=1e-3)
             for p in probe.parameters()]

    def make_stepper(fused):
        model, _ = wl.build(seed=0)
        params = model.parameters()
        opt = yellowfin(params, fused=fused)

        def step():
            for p, g in zip(params, grads):
                p.grad = g
            opt.step()

        return step

    record = compare_benchmark(
        "fig01",
        baseline=make_stepper(fused=False),
        candidate=make_stepper(fused=True),
        repeats=5, calls=150, warmup=20,
        params={"workload": wl.name, "optimizer": "YellowFin",
                "tensors": len(probe.parameters()),
                "elements": int(probe.num_parameters())})

    per_tensor_us = record.metrics["baseline_per_call_median_s"] * 1e6
    fused_us = record.metrics["candidate_per_call_median_s"] * 1e6
    print(f"\nfig01 optimizer step: per-tensor {per_tensor_us:.1f}us, "
          f"fused {fused_us:.1f}us, speedup "
          f"{record.metrics['speedup']:.2f}x")
    assert record.metrics["speedup"] >= 2.0
