"""Worker-axis engine: fleet-scale speedup gate and a 1000-worker figure.

Two measurements land in ``BENCH_fleet_scale.json``:

1. **The worker-axis speedup** — the headline systems claim of the
   ``repro.fleet`` engine: a 256-worker asynchronous scenario through
   the round-collapsed fleet engine versus the per-event serial
   ``ClusterRuntime`` loop.  The records are bit-identical (the
   differential suite in ``tests/test_fleet_equivalence.py`` enforces
   the whole eligible class; this test re-asserts it on the measured
   runs), so the ≥5x wall-clock payoff is pure engineering, not a
   semantics change.
2. **A 1000-worker heterogeneous fleet** — the figure-class record: a
   three-class topology (steady racks, a jittery mid tier, heavy-tail
   spot stragglers) with rack-correlated crash groups, run through the
   fleet backend with per-class cost/energy accounting attached to the
   result envelope.  This is the scale regime the paper's staleness
   analysis targets and the serial loop makes painful to sweep.
"""

import time

import numpy as np

from repro.bench import BenchReporter
from repro.run import run
from repro.xp import ScenarioSpec
from benchmarks.workloads import FULL_SCALE, print_table, steps

WORKERS = 256
SEED = 0
SPEEDUP_BAR = 5.0
# quarter-scale smoke runs amortize the engine's fixed per-commit cost
# over 4x fewer reads; they keep a direction gate, full scale gates 5x
SMOKE_BAR = 3.0


def speed_spec(reads):
    # lr sized for ~256-step staleness on the default quadratic (the
    # serial path diverges at the scalar default lr, which would turn
    # the measurement into a fallback no-op)
    return ScenarioSpec(
        name="fleet_scale", workload="quadratic_bowl",
        optimizer="sgd", optimizer_params={"lr": 0.002},
        delay={"kind": "constant", "delay": 1.0},
        workers=WORKERS, reads=reads, seed=SEED,
        record_series=("loss",))


def fig_spec(reads):
    """1000 workers in three hardware classes with correlated faults."""
    fleet = {
        "classes": [
            {"name": "steady_rack", "count": 640,
             "delay": {"kind": "constant", "delay": 1.0},
             "cost_per_hour": 3.2, "power_watts": 400.0},
            {"name": "jitter_rack", "count": 280,
             "delay": {"kind": "uniform", "low": 1.2, "high": 2.4,
                       "seed": 1},
             "cost_per_hour": 2.0, "power_watts": 300.0},
            {"name": "spot_tail", "count": 80,
             "delay": {"kind": "pareto", "alpha": 3.0, "scale": 1.5,
                       "seed": 2},
             "cost_per_hour": 0.9, "power_watts": 250.0},
        ],
        "fault_groups": [
            # a rack-sized outage early and a spot reclaim later (the
            # sim spans ~reads/1000 time units, so both fire even at
            # quarter-scale smoke budgets)
            {"class": "jitter_rack", "count": 40, "time": 0.8,
             "downtime": 0.5},
            {"class": "spot_tail", "count": 80, "time": 1.6,
             "downtime": 1.0},
        ],
    }
    return ScenarioSpec(
        name="fleet_1000_hetero", workload="quadratic_bowl",
        optimizer="sgd", optimizer_params={"lr": 2e-4},
        fleet=fleet, reads=reads, seed=SEED,
        record_series=("loss", "staleness", "sim_time", "crash",
                       "restart"))


def test_fleet_scale_speedup_and_heterogeneous_figure():
    reads = steps(16000)
    spec = speed_spec(reads)

    # warm both paths (imports, allocator) before timing
    run(spec, backend="serial")
    run(spec, backend="fleet")

    repeats = 3
    serial_walls, fleet_walls = [], []
    for _ in range(repeats):
        t0 = time.perf_counter()
        serial = run(spec, backend="serial").result
        serial_walls.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        fleet = run(spec, backend="fleet").result
        fleet_walls.append(time.perf_counter() - t0)
    serial_wall = min(serial_walls)
    fleet_wall = min(fleet_walls)
    speedup = serial_wall / fleet_wall

    # the whole point: the fleet engine ran, and bit-identically
    assert fleet.env["fleet_engine"] == "fleet"
    assert fleet.identity() == serial.identity()

    print_table(
        f"Fleet engine: {WORKERS} workers, {reads} reads",
        ["path", "wall (ms)", "reads/ms"],
        [["serial per-event", f"{serial_wall * 1e3:.1f}",
          f"{reads / serial_wall / 1e3:.1f}"],
         ["fleet batched", f"{fleet_wall * 1e3:.1f}",
          f"{reads / fleet_wall / 1e3:.1f}"]])
    print(f"\nworker-axis speedup: {speedup:.2f}x "
          f"(gate: >= {SPEEDUP_BAR:.0f}x at full scale)")

    # 1000-worker heterogeneous figure record (event-mode engine:
    # seeded stochastic delays + scheduled rack faults stay eligible)
    fig_reads = steps(8000)
    figure = run(fig_spec(fig_reads), backend="fleet").result
    serial_figure = run(fig_spec(fig_reads), backend="serial").result
    assert figure.identity() == serial_figure.identity()
    assert figure.env["fleet_engine"] == "fleet"
    accounting = figure.env["fleet_accounting"]
    staleness = np.asarray(figure.series["staleness"])
    crashes = float(len(figure.series.get("crash", [])))

    rows = [[c["name"], str(c["workers"]), f"{c['cost']:.4f}",
             f"{c['energy_wh']:.2f}"] for c in accounting["classes"]]
    rows.append(["total", "1000", f"{accounting['total_cost']:.4f}",
                 f"{accounting['total_energy_wh']:.2f}"])
    print_table("1000-worker heterogeneous fleet (cost / energy)",
                ["class", "workers", "cost ($)", "energy (Wh)"], rows)
    print(f"staleness mean {staleness.mean():.1f}, "
          f"p99 {np.percentile(staleness, 99):.0f}, "
          f"max {staleness.max():.0f}; crashes {crashes:.0f}")

    assert figure.metrics["diverged"] == 0.0
    assert crashes >= 120.0  # both rack groups (40 + 80) fired
    assert accounting["total_cost"] > 0.0

    metrics = {
        "speedup_256": speedup,
        "serial_wall_s": serial_wall,
        "fleet_wall_s": fleet_wall,
        "fig1000_final_loss": figure.metrics["final_loss"],
        "fig1000_staleness_mean": float(staleness.mean()),
        "fig1000_staleness_p99": float(np.percentile(staleness, 99)),
        "fig1000_crashes": float(crashes),
        "fig1000_total_cost": float(accounting["total_cost"]),
        "fig1000_total_energy_wh": float(
            accounting["total_energy_wh"]),
    }
    reporter = BenchReporter()
    reporter.record("fleet_scale", metrics,
                    {"workers": WORKERS, "reads": reads,
                     "fig_workers": 1000, "fig_reads": fig_reads,
                     "optimizer": "sgd"}, seed=SEED)
    reporter.write("fleet_scale")

    # the acceptance gate: batching the worker axis must make
    # fleet-scale scenarios at least 5x cheaper than per-event serial
    bar = SPEEDUP_BAR if FULL_SCALE else SMOKE_BAR
    assert speedup >= bar, (
        f"worker-axis speedup {speedup:.2f}x below the {bar:.0f}x bar "
        f"(serial {serial_wall:.3f}s, fleet {fleet_wall:.3f}s)")
