"""Figure 8: training losses on the CIFAR10 and CIFAR100 ResNets.

Paper: YellowFin matches hand-tuned momentum SGD on both ResNets and
reaches lower losses in fewer iterations than hand-tuned Adam (1.93x /
1.38x).  Here we print the three loss curves per workload and check the
qualitative relationships that survive scale-down.
"""

import numpy as np

from repro.analysis.convergence import smooth_losses
from repro.optim import Adam, MomentumSGD
from repro.tuning import run_workload
from benchmarks.workloads import (FULL_SCALE,
                                  cifar10_workload, cifar100_workload,
                                  print_series, yellowfin)

SEEDS = (0,)
CONFIGS = {
    "Momentum SGD": lambda p: MomentumSGD(p, lr=0.1, momentum=0.9),
    "Adam": lambda p: Adam(p, lr=1e-2),
    "YellowFin": lambda p: yellowfin(p),
}


def run_all():
    out = {}
    for workload in (cifar10_workload(450), cifar100_workload(450)):
        runs = {name: run_workload(workload, factory, name, seeds=SEEDS)
                for name, factory in CONFIGS.items()}
        out[workload.name] = (workload, runs)
    return out


def test_fig08_resnet_losses(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    for name, (workload, runs) in results.items():
        w = workload.smooth_window
        curves = {k: smooth_losses(r.losses, w) for k, r in runs.items()}
        ticks = [0, 100, 200, 300, workload.steps - 1]
        print_series(f"Figure 8: {name} training loss", ticks, curves)

        # every optimizer trains the model (the halving bar is a
        # full-budget claim; smoke runs check the direction)
        bar = 0.5 if FULL_SCALE else 1.0
        for opt_name, c in curves.items():
            assert c[-1] < bar * c[0], f"{opt_name} failed on {name}"

        # YellowFin's endpoint is in the same band as hand-tuned momentum
        # SGD (the paper's "matches tuned momentum SGD" claim, judged on
        # log-scale loss: within ~1.5 orders of magnitude at this scale)
        yf = max(curves["YellowFin"][-1], 1e-8)
        sgd = max(curves["Momentum SGD"][-1], 1e-8)
        assert abs(np.log10(yf) - np.log10(sgd)) < 3.0
