"""Figure 5: training loss and validation metrics on the text workloads.

Paper: on PTB / TS language modeling and WSJ constituency parsing,
YellowFin matches hand-tuned momentum SGD and beats tuned Adam on
validation perplexity / F1; on WSJ, momentum 0.9 already speeds up Vanilla
SGD substantially (2.73x) with better validation F1.

Validation metrics here: perplexity for the LM stand-ins; bracket-F1 for
the parsing stand-in.  Best-values-so-far are reported, as in the paper
("the validation metrics are monotonic as we report the best values up to
each number of iterations").
"""

import numpy as np

from repro.analysis.convergence import smooth_losses
from repro.data import SequenceLoader, make_ts_like, make_wsj_like
from repro.data.parsing import bracket_f1
from repro.models import LSTMLanguageModel
from repro.nn import LSTM
from repro.optim import Adam, AdaGrad, MomentumSGD, SGD
from repro.sim import evaluate_lm, train_sync
from benchmarks.workloads import print_table, steps, yellowfin

STEPS = steps(300)

# tuned configs from a prior grid pass at this scale
TS_CONFIGS = {
    "Momentum SGD": lambda p: MomentumSGD(p, lr=0.5, momentum=0.9),
    "Adam": lambda p: Adam(p, lr=1e-2),
    "YellowFin": lambda p: yellowfin(p),
}
WSJ_CONFIGS = {
    "Vanilla SGD": lambda p: SGD(p, lr=0.5),
    "AdaGrad": lambda p: AdaGrad(p, lr=0.1),
    "Momentum SGD": lambda p: MomentumSGD(p, lr=0.5, momentum=0.9),
    "Adam": lambda p: Adam(p, lr=1e-2),
    "YellowFin": lambda p: yellowfin(p),
}


def train_lm(corpus_tokens, vocab, layers, make_opt, seed=0):
    train_tokens, valid_tokens = corpus_tokens
    model = LSTMLanguageModel(vocab_size=vocab, embed_dim=16, hidden_size=32,
                              num_layers=layers, seed=seed)
    loader = SequenceLoader(train_tokens, batch_size=8, seq_len=12)
    state_box = [None]

    def loss_fn():
        ids, targets = loader.next_batch()
        loss, new_state = model.loss(ids, targets, state_box[0])
        state_box[0] = LSTM.detach_state(new_state)
        return loss

    opt = make_opt(model.parameters())
    log = train_sync(model, opt, loss_fn, steps=STEPS)
    return model, log.series("loss"), valid_tokens


def wsj_val_f1(model, valid_tokens):
    """Bracket F1 of greedy next-token predictions on held-out text."""
    loader = SequenceLoader(valid_tokens, batch_size=4, seq_len=12)
    from repro.autograd import no_grad
    preds, targets = [], []
    with no_grad():
        for _ in range(min(10, loader.batches_per_epoch)):
            ids, tgt = loader.next_batch()
            logits, _ = model(ids)
            preds.append(np.argmax(logits.data, axis=1))
            targets.append(tgt.reshape(-1))
    return bracket_f1(np.concatenate(preds), np.concatenate(targets))


def run_all():
    ts = make_ts_like(seed=0, length=6000)
    wsj = make_wsj_like(seed=0, num_sentences=900)

    ts_out, wsj_out = {}, {}
    for name, make_opt in TS_CONFIGS.items():
        model, losses, valid = train_lm(ts.split(0.9), ts.vocab_size, 2,
                                        make_opt)
        val = evaluate_lm(model, valid, batch_size=4, seq_len=12)
        ts_out[name] = {"losses": losses, "val_ppl": val["perplexity"]}
    for name, make_opt in WSJ_CONFIGS.items():
        model, losses, valid = train_lm(wsj.split(0.9), wsj.vocab_size, 3,
                                        make_opt)
        wsj_out[name] = {"losses": losses,
                         "val_f1": wsj_val_f1(model, valid)}
    return ts_out, wsj_out


def test_fig05_text_workloads(benchmark):
    ts_out, wsj_out = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [[name, f"{smooth_losses(r['losses'], 25)[-1]:.3f}",
             f"{r['val_ppl']:.2f}"] for name, r in ts_out.items()]
    print_table("Figure 5 (TS-like): final smoothed loss / val perplexity",
                ["optimizer", "train loss", "val perplexity"], rows)

    rows = [[name, f"{smooth_losses(r['losses'], 25)[-1]:.3f}",
             f"{100 * r['val_f1']:.2f}"] for name, r in wsj_out.items()]
    print_table("Figure 5 (WSJ-like): final smoothed loss / val bracket-F1",
                ["optimizer", "train loss", "val F1 (%)"], rows)

    # every optimizer actually trains
    for out in (ts_out, wsj_out):
        for name, r in out.items():
            assert r["losses"][-1] < r["losses"][0], f"{name} did not train"

    # paper: YF competitive with tuned momentum SGD on validation metrics
    assert ts_out["YellowFin"]["val_ppl"] < 1.5 * \
        ts_out["Momentum SGD"]["val_ppl"]
    # paper (WSJ): momentum SGD and YF beat Vanilla SGD's validation F1
    assert wsj_out["Momentum SGD"]["val_f1"] >= \
        wsj_out["Vanilla SGD"]["val_f1"] - 0.02
    assert wsj_out["YellowFin"]["val_f1"] >= \
        wsj_out["Vanilla SGD"]["val_f1"] - 0.02
