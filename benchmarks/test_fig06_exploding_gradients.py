"""Figure 6: adaptive clipping stabilizes an exploding-gradient RNN.

Paper: a variation of the LSTM architecture in Zhu et al. exhibits
exploding gradients; YellowFin's adaptive clipping threshold (tracking
sqrt(hmax)) suppresses the catastrophic loss spikes that occur without
clipping.
"""

import numpy as np

np.seterr(over="ignore")

from repro.data import make_iwslt_like
from repro.models import Seq2Seq
from benchmarks.workloads import (FULL_SCALE, print_series, print_table,
                                  steps, yellowfin)

STEPS = steps(800)
GAIN = 1.3  # exploding-gradient regime: unclipped training overflows


def run(adaptive_clip: bool, seed: int = 0):
    data = make_iwslt_like(seed=seed, train_size=256)
    model = Seq2Seq(vocab_size=data.vocab_size, embed_dim=12, hidden_size=24,
                    gain=GAIN, decoder_cell="rnn_relu", seed=seed)
    rng = np.random.default_rng(seed)
    opt = yellowfin(model.parameters(), adaptive_clip=adaptive_clip)
    losses, grad_norms = [], []
    for _ in range(STEPS):
        idx = rng.integers(0, data.train_size, size=8)
        model.zero_grad()
        loss = model.loss(data.src_train[idx].T, data.tgt_train[idx].T)
        loss.backward()
        grad_norms.append(float(np.sqrt(sum(
            float(np.sum(p.grad * p.grad)) for p in model.parameters()
            if p.grad is not None))))
        value = float(loss.data)
        losses.append(min(value, 1e30) if np.isfinite(value) else 1e30)
        if value > 1e20 or not np.isfinite(value):
            break
        opt.step()
    return np.array(losses), np.array(grad_norms)


def run_all():
    with_clip = run(adaptive_clip=True)
    without_clip = run(adaptive_clip=False)
    return with_clip, without_clip


def test_fig06_exploding_gradients(benchmark):
    (loss_clip, gn_clip), (loss_raw, gn_raw) = benchmark.pedantic(
        run_all, rounds=1, iterations=1)

    print_table(
        "Figure 6: exploding-gradient LSTM-variant",
        ["run", "steps survived", "max loss", "max grad norm"],
        [["with adaptive clipping", len(loss_clip),
          f"{loss_clip.max():.3g}", f"{gn_clip.max():.3g}"],
         ["without clipping", len(loss_raw),
          f"{loss_raw.max():.3g}", f"{gn_raw.max():.3g}"]])

    # without clipping: catastrophic loss explosion (orders of magnitude),
    # possibly truncating the run — the blow-up needs the full budget to
    # accumulate, so smoke scale only checks the clipped run's health
    if FULL_SCALE:
        assert loss_raw.max() > 1e3 * loss_raw[0] or len(loss_raw) < STEPS
    # with adaptive clipping: no catastrophic spike, training survives
    assert len(loss_clip) == STEPS
    assert loss_clip.max() < 10.0 * loss_clip[0]
    # and the run ends at a healthy loss
    assert loss_clip[-50:].mean() <= loss_clip[:50].mean()
