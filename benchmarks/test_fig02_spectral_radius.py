"""Figure 2: spectral radius of the momentum operator vs. learning rate.

Paper: for a scalar quadratic with h = 1, plot rho(A_t) over alpha in
[0, 3] for mu in {0.0, 0.1, 0.3, 0.5}.  The solid plateau at sqrt(mu) is
the robust region, and it widens as momentum grows.
"""

import numpy as np

from repro.analysis.operators import momentum_spectral_radius
from benchmarks.workloads import print_table

MUS = (0.0, 0.1, 0.3, 0.5)
H = 1.0


def compute_curves():
    alphas = np.linspace(0.05, 3.0, 60)
    curves = {mu: np.array([momentum_spectral_radius(a, H, mu)
                            for a in alphas]) for mu in MUS}
    return alphas, curves


def test_fig02_spectral_radius(benchmark):
    alphas, curves = benchmark.pedantic(compute_curves, rounds=1,
                                        iterations=1)

    rows = []
    for alpha in alphas[::6]:
        i = int(np.argmin(np.abs(alphas - alpha)))
        rows.append([f"{alpha:.2f}"] + [f"{curves[mu][i]:.4f}" for mu in MUS])
    print_table("Figure 2: rho(A) vs learning rate (h=1)",
                ["alpha"] + [f"mu={mu}" for mu in MUS], rows)

    # quantitative reproduction checks -------------------------------
    for mu in MUS:
        lo = (1 - np.sqrt(mu)) ** 2 / H
        hi = (1 + np.sqrt(mu)) ** 2 / H
        inside = (alphas >= lo + 1e-9) & (alphas <= hi - 1e-9)
        # plateau at sqrt(mu) inside the robust region
        np.testing.assert_allclose(curves[mu][inside], np.sqrt(mu),
                                   atol=1e-6)
        # strictly above sqrt(mu) outside
        outside = ~inside
        assert (curves[mu][outside] > np.sqrt(mu) - 1e-9).all()

    # the plateau widens with momentum (the paper's key visual message)
    widths = [(1 + np.sqrt(mu)) ** 2 - (1 - np.sqrt(mu)) ** 2 for mu in MUS]
    assert widths == sorted(widths)
    print("\nrobust-region widths:",
          ", ".join(f"mu={mu}: {w:.3f}" for mu, w in zip(MUS, widths)))
