"""The repro.obs zero-cost contract, measured: disabled overhead < 2%.

Every instrumentation site in the hot paths compiles down to one
module-global read plus a ``None`` check when no session is installed
(``repro.obs.session.active()``).  This benchmark prices that guard
against the fig01 headline step — a full forward/backward/fused-
YellowFin update on the CIFAR100-like ResNet — and gates the ratio:

``disabled_overhead = guard_cost × guards_per_step / step_cost``

The guard is micro-timed directly rather than A/B-ing two full runs:
at <0.1 µs per call the guard is three orders of magnitude below the
run-to-run noise of a millisecond-scale step, so a difference of
means would measure the machine, not the code.  Traced-mode cost is
recorded for reference but not asserted — tracing is opt-in and may
cost what it costs.

Writes ``BENCH_obs_overhead.json`` (committed; the perf gate diffs it
with the wide ``*overhead*`` tolerance — this test's own <2% bound is
the authoritative check).
"""

from repro.bench import BenchReporter
from repro.bench.timers import time_fn
from repro.obs import observe
from repro.obs.session import active
from benchmarks.workloads import cifar100_workload, yellowfin

#: Ambient-session guards on the fig01 serial step: the one in
#: ``Optimizer.step``.  Transport/codec/cluster guards sit on paths
#: this step never enters.
GUARDS_PER_STEP = 1

#: The ISSUE-level bound on disabled-mode overhead.
MAX_DISABLED_OVERHEAD = 0.02


def build_step():
    model, loss_fn = cifar100_workload().build(seed=0)
    optimizer = yellowfin(model.parameters(), fused=True)

    def step():
        model.zero_grad()
        loss = loss_fn()
        loss.backward()
        optimizer.step()

    return step


def test_obs_overhead_gate():
    step = build_step()
    disabled = time_fn(step, repeats=5, calls=20, warmup=5)
    guard = time_fn(lambda: active(), repeats=5, calls=10000, warmup=1)

    with observe():
        traced = time_fn(step, repeats=5, calls=20, warmup=5)

    step_us = disabled.per_call("median") * 1e6
    guard_ns = guard.per_call("median") * 1e9
    disabled_overhead = (guard.per_call("median") * GUARDS_PER_STEP
                         / disabled.per_call("median"))
    traced_overhead = (traced.per_call("median")
                       / disabled.per_call("median")) - 1.0

    print(f"\nheadline step (disabled obs): {step_us:10.1f} us")
    print(f"session guard:                {guard_ns:10.1f} ns")
    print(f"disabled overhead:            {disabled_overhead:10.6%}")
    print(f"traced overhead (reference):  {traced_overhead:10.2%}")

    assert disabled_overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled-mode obs overhead {disabled_overhead:.4%} exceeds "
        f"{MAX_DISABLED_OVERHEAD:.0%} of the headline step")

    reporter = BenchReporter()
    reporter.record("obs_overhead", {
        "disabled_overhead": disabled_overhead,
        "traced_overhead": traced_overhead,
        "step_disabled_us": step_us,
        "guard_ns": guard_ns,
    }, {"workload": "cifar100_resnet", "optimizer": "yellowfin_fused",
        "guards_per_step": GUARDS_PER_STEP})
    reporter.write("obs_overhead")
