"""Ablation of YellowFin's estimator design choices (Appendix E).

DESIGN.md calls out four implementation choices the paper motivates but
never ablates quantitatively: zero-debiased EMAs, log-space smoothing of
the curvature envelope, the slow-start learning-rate discount, and the
sliding-window width.  This bench switches each off individually on the
CIFAR10-like ResNet workload and reports the damage.
"""

import numpy as np

from repro.analysis.convergence import smooth_losses
from repro.tuning import run_workload
from benchmarks.workloads import (YF_BETA, YF_WINDOW, cifar10_workload,
                                  print_table, yellowfin)

SEEDS = (0,)

VARIANTS = {
    "full YellowFin": {},
    "no zero-debias": {"zero_debias": False},
    "linear-space curvature": {"log_space_curvature": False},
    "no slow start": {"slow_start": False},
    "window w=1": {"window": 1},
    "window w=50": {"window": 50},
}


def run_all():
    workload = cifar10_workload(350)
    out = {}
    for name, overrides in VARIANTS.items():
        result = run_workload(
            workload, lambda p, o=overrides: yellowfin(p, **o), name,
            seeds=SEEDS)
        out[name] = result
    return workload, out


def test_ablation_estimators(benchmark):
    workload, results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    w = workload.smooth_window
    target = 0.5  # mid-training loss threshold (initial loss ~2.4)
    finals, iters = {}, {}
    rows = []
    for name, result in results.items():
        smoothed = smooth_losses(result.losses, w)
        finals[name] = float(smoothed[-1])
        hit = np.nonzero(smoothed <= target)[0]
        iters[name] = int(hit[0]) if hit.size else workload.steps
        rows.append([name, f"{iters[name]}", f"{smoothed[-1]:.4f}",
                     "diverged" if result.diverged else ""])
    print_table("Ablation: YellowFin estimator design choices "
                "(CIFAR10-like ResNet)",
                ["variant", f"iters to loss {target}",
                 "final smoothed loss", ""], rows)

    # every variant must at least remain stable at this scale
    for name, result in results.items():
        assert not result.diverged, f"{name} diverged"

    # all variants eventually train: the design choices affect *speed*
    # rather than feasibility on this well-behaved workload
    for name, final in finals.items():
        assert final < 0.3, f"{name} failed to train"

    # zero-debias matters early: without it the lr EMA starts biased
    # toward zero and the mid-training threshold is hit later
    assert iters["no zero-debias"] > iters["full YellowFin"]
    # an over-wide window reacts slowly to the decaying curvature scale
    assert iters["window w=50"] >= iters["full YellowFin"]
