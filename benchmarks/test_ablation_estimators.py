"""Ablation of YellowFin's estimator design choices (Appendix E).

DESIGN.md calls out four implementation choices the paper motivates but
never ablates quantitatively: zero-debiased EMAs, log-space smoothing of
the curvature envelope, the slow-start learning-rate discount, and the
sliding-window width.  This bench switches each off individually on the
CIFAR10-like ResNet workload and reports the damage.

The variants are a one-axis :class:`repro.xp.Matrix` over
``optimizer_params`` on the single-worker cluster path (one worker with
a constant delay is the synchronous loop), executed in parallel by
the unified :func:`repro.run.run` API.
"""

import numpy as np

from repro.analysis.convergence import smooth_losses
from repro.run import run
from repro.xp import Matrix, ScenarioSpec
from benchmarks.workloads import (FULL_SCALE, YF_BETA, YF_WINDOW,
                                  print_table, steps)

SEED = 0
STEPS = steps(350)
SMOOTH_WINDOW = 30  # matches the cifar10 workload's smoothing window

VARIANTS = {
    "full YellowFin": {},
    "no zero-debias": {"zero_debias": False},
    "linear-space curvature": {"log_space_curvature": False},
    "no slow start": {"slow_start": False},
    "window w=1": {"window": 1},
    "window w=50": {"window": 50},
}

MATRIX = Matrix(
    base=ScenarioSpec(
        name="ablation_estimators", workload="cifar10_resnet",
        workers=1, reads=STEPS, seed=SEED, smooth=SMOOTH_WINDOW,
        optimizer="yellowfin",
        optimizer_params={"window": YF_WINDOW, "beta": YF_BETA},
        record_series=("loss",)),
    axes={"variant": {
        name: {f"optimizer_params.{key}": value
               for key, value in overrides.items()}
        for name, overrides in VARIANTS.items()}})


def run_all():
    # no cache (always measure); pool defaults to all cores, capped
    # by REPRO_XP_JOBS
    records = run(MATRIX.expand(), backend="parallel").results
    return dict(zip(VARIANTS, records))


def test_ablation_estimators(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    target = 0.5  # mid-training loss threshold (initial loss ~2.4)
    finals, iters = {}, {}
    rows = []
    for name, result in results.items():
        smoothed = smooth_losses(np.asarray(result.series["loss"]),
                                 SMOOTH_WINDOW)
        finals[name] = float(smoothed[-1])
        hit = np.nonzero(smoothed <= target)[0]
        iters[name] = int(hit[0]) if hit.size else STEPS
        diverged = bool(result.metrics["diverged"])
        rows.append([name, f"{iters[name]}", f"{smoothed[-1]:.4f}",
                     "diverged" if diverged else ""])
    print_table("Ablation: YellowFin estimator design choices "
                "(CIFAR10-like ResNet)",
                ["variant", f"iters to loss {target}",
                 "final smoothed loss", ""], rows)

    # every variant must at least remain stable at this scale
    for name, result in results.items():
        assert not result.metrics["diverged"], f"{name} diverged"

    # all variants eventually train: the design choices affect *speed*
    # rather than feasibility on this well-behaved workload (a smoke
    # budget only has to show the loss moving down)
    for name, result in results.items():
        smoothed = smooth_losses(np.asarray(result.series["loss"]),
                                 SMOOTH_WINDOW)
        if FULL_SCALE:
            assert finals[name] < 0.3, f"{name} failed to train"
        else:
            assert finals[name] < float(smoothed[0]), \
                f"{name} failed to train"

    # zero-debias matters early: without it the lr EMA starts biased
    # toward zero and the mid-training threshold is hit later
    assert iters["no zero-debias"] >= iters["full YellowFin"]
    # an over-wide window reacts slowly to the decaying curvature scale
    assert iters["window w=50"] >= iters["full YellowFin"]
    if FULL_SCALE:
        assert iters["no zero-debias"] > iters["full YellowFin"]
