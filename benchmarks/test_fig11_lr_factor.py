"""Figure 11 (Appendix J.4): fine-tuning YellowFin with a lr factor.

Paper: multiplying YellowFin's auto-tuned learning rate by a searched
constant factor (grid {1/3, 0.5, 1, 2, 3, 10}) further improves validation
metrics on a Tied LSTM (PTB) and a ResNext (CIFAR10), and the searched
YellowFin beats searched Adam.

Here: a tied-weight LSTM LM on the PTB stand-in; we search a reduced
factor grid for YellowFin and a lr grid for Adam, and compare validation
perplexities.
"""

import numpy as np

from repro.data import SequenceLoader, make_ptb_like
from repro.models import TiedLSTMLanguageModel
from repro.nn import LSTM
from repro.optim import Adam
from repro.sim import evaluate_lm, train_sync
from benchmarks.workloads import FULL_SCALE, print_table, steps, yellowfin

STEPS = steps(350)
YF_FACTORS = (1.0 / 3, 1.0, 3.0)
ADAM_LRS = (1e-3, 1e-2, 1e-1)


def train_tied(make_opt, seed=0):
    corpus = make_ptb_like(seed=seed, length=6000, vocab_size=120)
    train_tokens, valid_tokens = corpus.split(0.9)
    model = TiedLSTMLanguageModel(vocab_size=corpus.vocab_size, embed_dim=24,
                                  num_layers=2, seed=seed)
    loader = SequenceLoader(train_tokens, batch_size=8, seq_len=12)
    state_box = [None]

    def loss_fn():
        ids, targets = loader.next_batch()
        loss, new_state = model.loss(ids, targets, state_box[0])
        state_box[0] = LSTM.detach_state(new_state)
        return loss

    opt = make_opt(model.parameters())
    train_sync(model, opt, loss_fn, steps=STEPS)
    return evaluate_lm(model, valid_tokens, batch_size=4,
                       seq_len=12)["perplexity"]


def run_all():
    yf_results = {f: train_tied(lambda p, f=f: yellowfin(p, lr_factor=f))
                  for f in YF_FACTORS}
    adam_results = {lr: train_tied(lambda p, lr=lr: Adam(p, lr=lr))
                    for lr in ADAM_LRS}
    return yf_results, adam_results


def test_fig11_lr_factor(benchmark):
    yf_results, adam_results = benchmark.pedantic(run_all, rounds=1,
                                                  iterations=1)

    rows = [[f"YellowFin x{f:g}", f"{p:.2f}"] for f, p in yf_results.items()]
    rows += [[f"Adam lr={lr:g}", f"{p:.2f}"]
             for lr, p in adam_results.items()]
    print_table("Figure 11: Tied-LSTM validation perplexity",
                ["configuration", "val perplexity"], rows)

    yf_default = yf_results[1.0]
    yf_best = min(yf_results.values())
    adam_best = min(adam_results.values())
    print(f"\nYF default {yf_default:.2f} | YF searched {yf_best:.2f} | "
          f"Adam searched {adam_best:.2f}")

    # searching the lr factor can only help (it includes the default)
    assert yf_best <= yf_default + 1e-9
    # paper: searched YellowFin is competitive with searched Adam — a
    # full-budget ranking (the tuner's slow start dominates smoke runs)
    if FULL_SCALE:
        assert yf_best < 1.3 * adam_best
