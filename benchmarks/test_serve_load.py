"""Service-level benchmark of repro.serve: batching gain + open loop.

Two measurements, one committed ``BENCH_serve.json``:

1. **Cross-tenant batching gain.**  The same eight-member lockstep
   family is served twice on a one-worker daemon — once under the
   ``batching`` scheduler (one :class:`~repro.vec.engine.
   BatchedClusterEngine` unit) and once under ``fifo`` (eight scalar
   units) — and the wall-clock ratio is recorded as
   ``batching_speedup``.  Both arms pay identical HTTP, scheduling,
   and pool costs per job, so the ratio isolates what the service's
   coalescing actually buys and stays portable across hardware; the
   perf gate holds it via the ``*speedup*`` rule.

2. **Open-loop latency.**  A seeded Poisson arrival process
   (:class:`~repro.serve.loadgen.LoadGenerator`) drives a cached
   batching daemon through the real client path; the report's
   p50/p95/p99 end-to-end latencies land in the record under the
   environment-gated ``*_s`` timing rule.

The hard assertions are the scale-aware floor on the batching gain
(>= 1.5x full scale, >= 1.15x smoke) and zero lost requests under
load; absolute latency is hardware-bound and left to the gate.
"""

import time

import pytest

from repro.bench import BenchReporter
from repro.serve import (Client, LoadGenerator, ServeConfig,
                         ServeDaemon, fork_available)
from repro.xp import ScenarioSpec
from benchmarks.workloads import FULL_SCALE, print_table, steps

SEED = 0
FAMILY_SIZE = 8
REPEATS = 2


def family_spec(seed, reads, name=None):
    return ScenarioSpec(
        name=name or f"serve_load/s{seed}", workload="quadratic_bowl",
        workload_params={"dim": 64, "noise_horizon": 32},
        optimizer="momentum_sgd",
        optimizer_params={"lr": 0.02, "momentum": 0.9},
        delay={"kind": "constant", "delay": 1.0},
        workers=2, reads=reads, seed=seed, smooth=25)


def timed_sweep(scheduler, specs):
    """Wall time to serve ``specs`` on a one-worker daemon, with the
    whole set queued before dispatch so the scheduler sees one mix."""
    daemon = ServeDaemon(ServeConfig(
        cache_dir=None, min_workers=1, max_workers=1,
        scheduler=scheduler)).start()
    try:
        client = Client(daemon.address, tenant="bench")
        daemon.pause()
        tickets = client.submit(specs)
        start = time.perf_counter()
        daemon.resume()
        for ticket in tickets:
            client.result(ticket, timeout=300)
        wall = time.perf_counter() - start
        units = daemon.pool.units_dispatched
    finally:
        daemon.stop()
    return wall, units


def test_serve_batching_and_open_loop_load():
    reads = steps(400)
    family = [family_spec(seed, reads) for seed in range(FAMILY_SIZE)]

    walls = {"batching": [], "fifo": []}
    for _ in range(REPEATS):
        for scheduler in walls:
            wall, units = timed_sweep(scheduler, family)
            # the schedulers must have produced the unit shapes the
            # ratio claims to compare
            assert units == (1 if scheduler == "batching"
                             else FAMILY_SIZE)
            walls[scheduler].append(wall)
    batch_wall = min(walls["batching"])
    fifo_wall = min(walls["fifo"])
    batching_speedup = fifo_wall / batch_wall

    # open-loop Poisson load against a cached batching daemon; the
    # seed-cycling factory mixes fresh specs with cache/dedup repeats
    load_reads = steps(120)
    daemon = ServeDaemon(ServeConfig(
        cache_dir=None, min_workers=1, max_workers=2,
        admission_params={"max_pending": 1024,
                          "max_inflight_per_tenant": 512})).start()
    try:
        generator = LoadGenerator(
            daemon.address,
            lambda index, tenant: family_spec(index % 6, load_reads),
            tenants=2, rate_hz=10.0, duration_s=max(1.0, 2.0 * (
                reads / 400)), seed=SEED, result_timeout=300.0)
        report = generator.run()
    finally:
        daemon.stop()

    assert report.errors == 0 and report.rejected == 0, report
    assert report.completed == report.offered > 0, report

    print_table(
        f"serve: {FAMILY_SIZE}-member family on one worker, "
        f"{reads} reads",
        ["arm", "wall (s)", "units"],
        [["batching scheduler", f"{batch_wall:.3f}", "1"],
         ["fifo scheduler", f"{fifo_wall:.3f}", str(FAMILY_SIZE)],
         ["speedup", f"{batching_speedup:.2f}x", "—"]])
    print_table(
        f"serve: open-loop Poisson, {report.offered} arrivals",
        ["metric", "value"],
        [["completed", str(report.completed)],
         ["throughput (req/s)", f"{report.throughput_rps:.2f}"],
         ["latency p50 (s)", f"{report.latency_p50_s:.3f}"],
         ["latency p95 (s)", f"{report.latency_p95_s:.3f}"],
         ["latency p99 (s)", f"{report.latency_p99_s:.3f}"]])

    reporter = BenchReporter()
    reporter.record(
        "serve",
        {"batching_wall_s": batch_wall,
         "fifo_wall_s": fifo_wall,
         "batching_speedup": batching_speedup,
         **report.as_dict()},
        {"family_size": FAMILY_SIZE, "reads": reads,
         "load_reads": load_reads, "rate_hz": 10.0,
         "tenants": 2, "dim": 64,
         "pool": "fork" if fork_available() else "thread"},
        seed=SEED)
    reporter.write("serve")

    floor = 1.5 if FULL_SCALE else 1.15
    assert batching_speedup >= floor, (
        f"cross-tenant batching bought only {batching_speedup:.2f}x "
        f"(need >= {floor}x): fifo {fifo_wall:.3f}s vs batched "
        f"{batch_wall:.3f}s")
