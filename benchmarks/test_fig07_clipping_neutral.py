"""Figure 7: adaptive clipping is harmless on stable objectives.

Paper: on PTB LSTM and CIFAR10 ResNet — models with no gradient
instabilities — the difference between YellowFin with and without adaptive
clipping diminishes quickly.
"""

import numpy as np

from repro.analysis.convergence import smooth_losses
from repro.tuning import run_workload
from benchmarks.workloads import (cifar10_workload, print_table,
                                  ptb_workload, yellowfin)

SEEDS = (0,)


def run_all():
    out = {}
    for workload in (ptb_workload(250), cifar10_workload(300)):
        with_clip = run_workload(
            workload, lambda p: yellowfin(p, adaptive_clip=True),
            "yf-clip", seeds=SEEDS)
        without_clip = run_workload(
            workload, lambda p: yellowfin(p, adaptive_clip=False),
            "yf-noclip", seeds=SEEDS)
        out[workload.name] = (workload, with_clip, without_clip)
    return out


def test_fig07_clipping_neutral(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, (workload, with_clip, without_clip) in results.items():
        w = workload.smooth_window
        a = smooth_losses(with_clip.losses, w)
        b = smooth_losses(without_clip.losses, w)
        ratio = max(a[-1], 1e-12) / max(b[-1], 1e-12)
        rows.append([name, f"{a[-1]:.4f}", f"{b[-1]:.4f}", f"{ratio:.2f}x"])
        # the difference between clipped and unclipped "diminishes":
        # final smoothed losses agree within a small factor (note these
        # are deep in training where absolute losses are tiny)
        assert 1 / 2.5 < ratio < 2.5, f"clipping changed the outcome on {name}"
        # both variants actually train (loss improves)
        assert a[-1] < a[0] and b[-1] < b[0]
    print_table("Figure 7: YellowFin with vs without adaptive clipping",
                ["workload", "final loss (clip)", "final loss (no clip)",
                 "relative gap"], rows)
