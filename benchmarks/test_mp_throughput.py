"""Throughput of the real multi-process backend vs the simulator.

Measures the free-running executor (:func:`repro.mp.free_run`) — real
worker processes racing through a shared-memory transport — against
the in-process simulator on the same compute-heavy scenario, and the
worker-count curve at 1/2/4 workers.

The workload is deliberately compute-heavy with a *small* parameter
vector (large batch, small model): per-read gradient work dominates
the parameter round-trip, so extra workers pipeline real computation
against the coordinator's serialized commit path.

Gating policy for the committed ``BENCH_mp_throughput.json``: the
wall-clock metrics (``*_s``) follow the suite's timing rule — they
gate only when the baseline and fresh environment fingerprints match,
because absolute throughput is hardware-bound.  The per-worker rates
and scaling ratios are recorded for trend tracking but deliberately
*avoid* the ``*speedup*`` rule (which gates across environments):
worker scaling on a contended single-core runner is load-noise, not a
portable claim, so it must not fail healthy hardware.  The test itself
asserts the functional invariants every run must satisfy regardless of
load: exact commit accounting and no starved worker.
"""

import time

import pytest

from repro.bench import BenchReporter
from repro.mp import free_run, mp_available
from repro.run import run
from repro.xp import ScenarioSpec
from benchmarks.workloads import FULL_SCALE, print_table, steps

pytestmark = pytest.mark.skipif(
    not mp_available(), reason="no fork/shared-memory support")

SEED = 0
WORKER_COUNTS = (1, 2, 4)
REPEATS = 3
WORKLOAD_PARAMS = {"samples": 4096, "features": 32, "hidden": 64,
                   "batch_size": 4096}


def throughput_spec(workers, reads):
    return ScenarioSpec(
        name=f"mp_throughput_w{workers}", workload="toy_classifier",
        workload_params=WORKLOAD_PARAMS,
        optimizer="momentum_sgd",
        optimizer_params={"lr": 0.05, "momentum": 0.9, "fused": True},
        delay={"kind": "constant", "delay": 1.0},
        workers=workers, reads=reads, seed=SEED, smooth=25)


def test_mp_throughput_scaling():
    reads = steps(200)

    # serial simulator reference on the same scenario (best of repeats)
    sim_spec = throughput_spec(4, reads)
    run(sim_spec, backend="serial")  # warm imports/allocator
    sim_wall = min(_timed(lambda: run(sim_spec, backend="serial"))
                   for _ in range(REPEATS))
    serial_rps = reads / sim_wall

    mp_rps = {}
    for workers in WORKER_COUNTS:
        best = 0.0
        for _ in range(REPEATS):
            out = free_run(throughput_spec(workers, reads),
                           timeout=180.0)
            # functional invariants, independent of machine load:
            # exact commit accounting and no starved worker
            assert out["reads"] == reads
            assert out["updates"] == reads
            assert sum(out["worker_commits"]) == reads
            if FULL_SCALE:
                assert all(c > 0 for c in out["worker_commits"]), \
                    out["worker_commits"]
            best = max(best, out["reads_per_sec"])
        mp_rps[workers] = best

    print_table(
        f"mp free-running throughput, {reads} reads",
        ["path", "reads/sec", "vs 1 worker"],
        [["serial simulator", f"{serial_rps:.1f}", "—"]]
        + [[f"mp {w} worker{'s' if w > 1 else ''}",
            f"{mp_rps[w]:.1f}", f"{mp_rps[w] / mp_rps[1]:.2f}x"]
           for w in WORKER_COUNTS])

    reporter = BenchReporter()
    reporter.record(
        "mp_throughput",
        {"serial_sim_wall_s": sim_wall,
         "mp_wall_w1_s": reads / mp_rps[1],
         "mp_wall_w2_s": reads / mp_rps[2],
         "mp_wall_w4_s": reads / mp_rps[4],
         "serial_sim_reads_per_sec": serial_rps,
         "mp_reads_per_sec_w1": mp_rps[1],
         "mp_reads_per_sec_w2": mp_rps[2],
         "mp_reads_per_sec_w4": mp_rps[4],
         "mp_scaling_w2": mp_rps[2] / mp_rps[1],
         "mp_scaling_w4": mp_rps[4] / mp_rps[1]},
        {"reads": reads, "workers": list(WORKER_COUNTS),
         "transport": "shm", "optimizer": "momentum_sgd",
         **WORKLOAD_PARAMS}, seed=SEED)
    reporter.write("mp_throughput")

    # the only portable perf claim: the real system must stay within
    # an order of magnitude of the simulator on the same scenario —
    # anything slower means the transport path degenerated
    assert mp_rps[1] > serial_rps / 10.0, (
        f"mp single-worker throughput {mp_rps[1]:.1f} reads/s "
        f"collapsed vs simulator {serial_rps:.1f} reads/s")


def _timed(thunk):
    t0 = time.perf_counter()
    thunk()
    return time.perf_counter() - t0
