"""Figure 4: total vs. algorithmic momentum, sync / async / closed-loop.

Paper: running YellowFin,

- synchronously, measured total momentum equals the algorithmic value;
- on 16 asynchronous workers (open loop), total momentum is strictly
  larger than the algorithmic target — asynchrony adds momentum;
- with the closed loop, algorithmic momentum is lowered automatically so
  measured total momentum matches the target.
"""

import numpy as np

from repro import nn
from repro.autograd import Tensor, functional as F
from repro.data import BatchLoader
from repro.run import run_round_robin
from repro.sim import train_sync
from benchmarks.workloads import (FULL_SCALE,
                                  closed_loop_yellowfin, print_table, steps,
                                  YF_BETA, YF_WINDOW)

WORKERS = 16
STEPS = steps(300)
# Measurement window: the "training-active" phase.  The paper's ResNet
# run never converges within its budget, so asynchrony-induced momentum is
# visible throughout; our small workload converges quickly, after which
# parameter motion is noise-dominated and the ratio estimator simply reads
# back the algorithmic momentum.  We therefore measure while the loss is
# still moving, mirroring the regime of the paper's figure.
WIN_LO, WIN_HI = 30, 150


def build(seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(512, 8))
    w_true = rng.normal(size=8)
    y = (x @ w_true + 0.3 * rng.normal(size=512) > 0).astype(int)
    model = nn.Sequential(nn.Linear(8, 24, seed=seed), nn.ReLU(),
                          nn.Linear(24, 2, seed=seed + 1))
    loader = BatchLoader(x, y, batch_size=32, seed=seed)

    def loss_fn():
        xb, yb = loader.next_batch()
        return F.cross_entropy(model(Tensor(xb)), yb)

    return model, loss_fn


def run_case(name, asynchronous, feedback):
    model, loss_fn = build()
    staleness = WORKERS - 1 if asynchronous else 0
    opt = closed_loop_yellowfin(model.parameters(), staleness=staleness,
                                feedback=feedback)
    if asynchronous:
        log = run_round_robin(model, opt, loss_fn, steps=STEPS,
                              workers=WORKERS)
    else:
        log = train_sync(model, opt, loss_fn, steps=STEPS)
    total = log.series("total_momentum")
    target = log.series("target_momentum")  # SingleStep target mu*
    algo = log.series("algorithmic_momentum")
    window = slice(WIN_LO, WIN_HI)
    return {
        "name": name,
        "total": float(np.nanmedian(total[window])),
        "target": float(np.nanmedian(target[window])),
        "algorithmic": float(np.nanmedian(algo[window])),
    }


def run_all():
    return [
        run_case("synchronous (open loop)", asynchronous=False,
                 feedback=False),
        run_case(f"async x{WORKERS} (open loop)", asynchronous=True,
                 feedback=False),
        run_case(f"async x{WORKERS} (closed loop)", asynchronous=True,
                 feedback=True),
    ]


def test_fig04_total_momentum(benchmark):
    cases = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [[c["name"], f"{c['target']:.3f}", f"{c['algorithmic']:.3f}",
             f"{c['total']:.3f}"] for c in cases]
    print_table("Figure 4: momentum accounting (training-active medians)",
                ["setting", "target mu*", "algorithmic mu",
                 "measured total mu_T"], rows)

    sync, open_async, closed_async = cases

    # left panel: synchronously, total momentum ~= algorithmic momentum
    assert abs(sync["total"] - sync["algorithmic"]) < 0.1

    # middle panel: asynchrony inflates total momentum above the target
    assert open_async["total"] > open_async["target"] + 0.05

    # right panel: the loop pushes algorithmic momentum below the target
    # and brings total momentum back toward it (the controller needs the
    # full budget to wind down — smoke scale checks the panels above)
    if FULL_SCALE:
        assert closed_async["algorithmic"] < closed_async["target"] - 0.02
        gap_open = abs(open_async["total"] - open_async["target"])
        gap_closed = abs(closed_async["total"] - closed_async["target"])
        assert gap_closed < gap_open
