"""Table 2: speedup of tuned momentum SGD and YellowFin over tuned Adam.

Paper (Section 5.1 protocol): Adam and momentum SGD are tuned on
logarithmic learning-rate grids (momentum fixed at 0.9 for SGD); YellowFin
runs with no hand tuning.  Speedup is the ratio of iterations needed to
reach the lowest smoothed loss achieved by both runs.

Paper numbers:            CIFAR10  CIFAR100  PTB    TS     WSJ
    momentum SGD          1.71x    1.87x     0.88x  2.49x  1.33x
    YellowFin             1.93x    1.38x     0.77x  3.28x  2.33x

We reproduce the *shape*: momentum SGD and YellowFin are competitive with
or faster than tuned Adam on most workloads (YellowFin's slow start is a
visibly larger fraction of these few-hundred-step runs than of the paper's
20k-120k-step runs, which depresses its ratios).
"""

import numpy as np

from repro.optim import Adam, MomentumSGD
from repro.tuning import grid_search, run_workload, speedup_ratio
from benchmarks.workloads import (FULL_SCALE,
                                  cifar10_workload, cifar100_workload,
                                  print_table, ptb_workload, ts_workload,
                                  wsj_workload, yellowfin)

SEEDS = (0,)

IMAGE_ADAM_GRID = [1e-3, 1e-2, 1e-1]
IMAGE_SGD_GRID = [1e-2, 1e-1, 1.0]
TEXT_ADAM_GRID = [1e-3, 1e-2, 1e-1]
TEXT_SGD_GRID = [1e-1, 5e-1, 2.0]

PAPER = {
    "CIFAR10-like ResNet": (1.71, 1.93),
    "CIFAR100-like ResNet": (1.87, 1.38),
    "PTB-like word LSTM": (0.88, 0.77),
    "TS-like char LSTM": (2.49, 3.28),
    "WSJ-like parsing LSTM": (1.33, 2.33),
}


def run_one(workload, adam_grid, sgd_grid):
    from repro.analysis.convergence import smooth_losses

    adam = grid_search(workload, lambda p, lr: Adam(p, lr=lr), adam_grid,
                       "adam", seeds=SEEDS)
    sgd = grid_search(workload,
                      lambda p, lr: MomentumSGD(p, lr=lr, momentum=0.9),
                      sgd_grid, "mom-sgd", seeds=SEEDS)
    yf = run_workload(workload, lambda p: yellowfin(p), "yf", seeds=SEEDS)

    w = workload.smooth_window
    sgd_speedup, _ = speedup_ratio(adam.best_run.losses, sgd.best_run.losses,
                                   smooth_window=w)
    yf_speedup, _ = speedup_ratio(adam.best_run.losses, yf.losses,
                                  smooth_window=w)
    return {
        "adam_lr": adam.best_lr,
        "sgd_lr": sgd.best_lr,
        "sgd_speedup": sgd_speedup,
        "yf_speedup": yf_speedup,
        "first_loss": float(smooth_losses(yf.losses, w)[0]),
        "yf_final": float(smooth_losses(yf.losses, w)[-1]),
        "adam_final": float(smooth_losses(adam.best_run.losses, w)[-1]),
    }


def run_all():
    jobs = [
        (cifar10_workload(500), IMAGE_ADAM_GRID, IMAGE_SGD_GRID),
        (cifar100_workload(500), IMAGE_ADAM_GRID, IMAGE_SGD_GRID),
        (ptb_workload(400), TEXT_ADAM_GRID, TEXT_SGD_GRID),
        (ts_workload(400), TEXT_ADAM_GRID, TEXT_SGD_GRID),
        (wsj_workload(400), TEXT_ADAM_GRID, TEXT_SGD_GRID),
    ]
    return {wl.name: run_one(wl, a, s) for wl, a, s in jobs}


def test_tab02_speedups(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, r in results.items():
        paper_sgd, paper_yf = PAPER[name]
        rows.append([
            name, "1x",
            f"{r['sgd_speedup']:.2f}x (paper {paper_sgd}x)",
            f"{r['yf_speedup']:.2f}x (paper {paper_yf}x)",
            f"{r['yf_final']:.4f} / {r['adam_final']:.4f}",
            f"adam lr={r['adam_lr']:g}, sgd lr={r['sgd_lr']:g}",
        ])
    print_table("Table 2: speedup over tuned Adam",
                ["workload", "Adam", "momentum SGD", "YellowFin",
                 "final loss YF/Adam", "tuned configs"], rows)

    sgd_speedups = [r["sgd_speedup"] for r in results.values()]
    yf_speedups = [r["yf_speedup"] for r in results.values()]

    # Shape checks at this scale (see EXPERIMENTS.md for the honest
    # deviations: YellowFin's slow start and estimator adaptation occupy a
    # much larger fraction of few-hundred-step runs than of the paper's
    # 20k-120k-step runs, which depresses iteration-ratio speedups):
    # (2) YellowFin improves the loss on every workload with zero hand
    #     tuning (holds at any scale)
    for name, r in results.items():
        assert r["yf_final"] < r["first_loss"], \
            f"YellowFin failed to improve {name}"
    # The speedup-ratio claims are full-budget statements: YellowFin's
    # slow start and estimator adaptation occupy most of a smoke run,
    # which depresses every iteration ratio below its calibrated bar.
    if FULL_SCALE:
        # (1) tuned momentum SGD beats tuned Adam on at least one
        #     workload, substantially (the paper's headline
        #     momentum-matters claim)
        assert max(sgd_speedups) > 1.3
        # (2b) YellowFin trains substantially (>= 50% loss reduction)
        #     on a majority (PTB is its weakest workload in the paper
        #     as well: 0.77x there, slowest here)
        substantial = sum(r["yf_final"] < 0.5 * r["first_loss"]
                          for r in results.values())
        assert substantial >= 3
        # (3) YellowFin is never catastrophically slower than tuned Adam
        assert all(s > 0.2 for s in yf_speedups)
        # (4) and is competitive (>= 0.6x of a grid-tuned optimizer,
        #     with zero tuning of its own) on several workloads
        assert sum(s >= 0.6 for s in yf_speedups) >= 2
