"""Benchmark-suite plumbing: every figure test leaves a perf record.

An autouse fixture times each test in this directory through
:mod:`repro.bench` and writes ``BENCH_<test>.json`` (into
``$REPRO_BENCH_DIR`` or the working directory).  Figure scripts that want
richer records — kernel-level timings, speedup comparisons — call the
harness directly on top of this; see ``test_fig01_headline.py``.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import BenchReporter


def _record_name(node_name: str) -> str:
    # test_fig01_headline -> fig01_headline
    base = node_name.split("[", 1)[0]
    return base[len("test_"):] if base.startswith("test_") else base


@pytest.hookimpl(tryfirst=True, hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Expose each phase's outcome on the item so fixtures can see it."""
    outcome = yield
    report = outcome.get_result()
    setattr(item, f"rep_{report.when}", report)


@pytest.fixture(autouse=True)
def bench_perf_record(request):
    """Record wall time of the enclosing benchmark test as BENCH_*.json.

    Failed or errored tests leave no record — a partial wall time would
    masquerade as a successful measurement in the perf trajectory.
    """
    start = time.perf_counter()
    yield
    elapsed = time.perf_counter() - start
    report = getattr(request.node, "rep_call", None)
    if report is None or not report.passed:
        return
    name = _record_name(request.node.name)
    reporter = BenchReporter()
    reporter.record(name, {"wall_s": elapsed},
                    {"test": request.node.nodeid})
    reporter.write(name)
