"""Cluster scenarios: closed-loop vs fixed momentum across delay models.

The paper's Section 5.2 evaluates asynchrony robustness under one
protocol — a fixed round-robin delay.  The cluster runtime widens the
scenario space: uniform jitter, memoryless completion, heavy-tailed
stragglers, fast/slow machine mixes, and a recorded trace replay.

Since PR 3 the sweep itself is declarative: a :class:`repro.xp.Matrix`
expands delay model x optimizer into :class:`~repro.xp.ScenarioSpec`
configurations and the unified :func:`repro.run.run` API executes them
across all cores (scenario results are a pure function of the spec, so
the parallel records are bit-identical to a serial run).

For each delay model we train the same classifier with (a) hand-fixed
momentum 0.9 and (b) closed-loop YellowFin, recording final smoothed
losses and staleness profiles to ``BENCH_cluster_scenarios.json``.
What this laptop-scale record shows (and asserts): *both* optimizers
stay stable across every delay model, including heavy tails — no
divergence anywhere.  On this short-horizon, well-conditioned workload
the hand-tuned fixed momentum keeps a lower final loss (the auto-tuner
spends the early steps measuring), so the record tracks the fixed-vs-
closed-loop gap per scenario rather than declaring a winner; the
paper's regime — where hand-tuned momentum destabilizes under
staleness — needs the harder, longer workloads of the figure suite.
"""

import numpy as np

from repro.bench import BenchReporter
from repro.run import run
from repro.xp import Matrix, ScenarioSpec
from benchmarks.workloads import print_table, steps

WORKERS = 4
TAU = WORKERS - 1
READS = steps(240)
SMOOTH = 25
SEED = 0

# a short, bursty hand-recorded trace: steady 1.0s with periodic 4x
# stalls on two of the lanes
TRACE = {"workers": {
    "0": [1.0, 1.0, 1.0, 1.0],
    "1": [1.0, 1.0, 4.0, 1.0],
    "2": [1.0, 1.0, 1.0, 1.0],
    "3": [1.0, 4.0, 1.0, 1.0],
}}


# declarative delay-model axis: each scenario builds a fresh,
# deterministically seeded model, so runs are independent and
# reproducible no matter which process executes them
DELAYS = {
    "constant": {"kind": "constant", "delay": 1.0},
    "uniform": {"kind": "uniform", "low": 0.5, "high": 1.5, "seed": 10},
    "exponential": {"kind": "exponential", "mean": 0.7, "floor": 0.3,
                    "seed": 11},
    "pareto": {"kind": "pareto", "alpha": 1.5, "scale": 0.5, "seed": 12},
    "heterogeneous": {"kind": "heterogeneous", "models": [
        {"kind": "constant", "delay": 1.0},
        {"kind": "constant", "delay": 1.0},
        {"kind": "pareto", "alpha": 1.3, "scale": 0.8, "seed": 13},
        {"kind": "constant", "delay": 1.2},
    ]},
    "trace": {"kind": "trace", "trace": TRACE},
}

OPTIMIZERS = {
    "fixed_momentum": {
        "optimizer": "momentum_sgd",
        "optimizer_params": {"lr": 0.05, "momentum": 0.9, "fused": True},
    },
    "closed_loop": {
        "optimizer": "closed_loop_yellowfin",
        "optimizer_params": {"staleness": TAU, "gamma": 0.01, "window": 5,
                             "beta": 0.99, "fused": True},
    },
}

MATRIX = Matrix(
    base=ScenarioSpec(name="cluster_scenarios", workload="toy_classifier",
                      workers=WORKERS, num_shards=2, reads=READS,
                      seed=SEED, smooth=SMOOTH),
    axes={
        "delay": {name: {"delay": cfg} for name, cfg in DELAYS.items()},
        "optimizer": OPTIMIZERS,
    })


def test_cluster_scenario_matrix():
    specs = MATRIX.expand()
    # no cache (always measure); pool defaults to all cores, capped
    # by REPRO_XP_JOBS
    outcome = run(specs, backend="parallel")
    results = {labels: result for labels, result
               in zip(MATRIX.labels(), outcome.results)}

    rows = []
    metrics = {}
    for scenario_name in DELAYS:
        fixed = results[(scenario_name, "fixed_momentum")].metrics
        closed = results[(scenario_name, "closed_loop")].metrics
        rows.append([
            scenario_name,
            f"{fixed['staleness_mean']:.2f}",
            f"{fixed['staleness_max']:.0f}",
            f"{fixed['final_loss']:.4f}",
            f"{closed['final_loss']:.4f}",
        ])
        metrics[f"{scenario_name}_fixed_final"] = fixed["final_loss"]
        metrics[f"{scenario_name}_closed_final"] = closed["final_loss"]
        metrics[f"{scenario_name}_mean_staleness"] = \
            fixed["staleness_mean"]
    print_table(
        f"Cluster scenarios: {WORKERS} workers, {READS} reads",
        ["delay model", "mean tau", "max tau", "fixed mu=0.9", "closed-loop"],
        rows)

    # every scenario trains: finite losses that actually decreased
    for labels, r in results.items():
        assert np.isfinite(r.metrics["final_loss"]), labels
        assert r.metrics["final_loss"] < r.metrics["initial_loss"], labels

    # non-constant models genuinely vary the staleness process
    for scenario_name in ("uniform", "exponential", "pareto",
                          "heterogeneous", "trace"):
        summary = results[(scenario_name, "fixed_momentum")].metrics
        assert summary["staleness_max"] > summary["staleness_median"], \
            scenario_name

    # robustness record: worst-case final loss across non-constant
    # models, for both optimizers (neither may destabilize; the
    # per-scenario gap is the tracked quantity, not a winner)
    nonconstant = [s for s in DELAYS if s != "constant"]
    fixed_worst = max(results[(s, "fixed_momentum")].metrics["final_loss"]
                      for s in nonconstant)
    closed_worst = max(results[(s, "closed_loop")].metrics["final_loss"]
                       for s in nonconstant)
    metrics["fixed_worst_case"] = fixed_worst
    metrics["closed_loop_worst_case"] = closed_worst
    metrics["worst_case_ratio"] = fixed_worst / closed_worst
    print(f"\nworst-case final loss across non-constant models — "
          f"fixed: {fixed_worst:.4f}, closed-loop: {closed_worst:.4f}")
    # stability across heavy tails: worst case stays within an order of
    # magnitude of the easy constant-delay case for both optimizers
    for opt_name, worst in (("fixed_momentum", fixed_worst),
                            ("closed_loop", closed_worst)):
        base = results[("constant", opt_name)].metrics["final_loss"]
        assert worst < 10 * base + 0.5, (opt_name, worst, base)

    reporter = BenchReporter()
    reporter.record("cluster_scenarios", metrics,
                    {"workers": WORKERS, "reads": READS,
                     "scenarios": sorted(DELAYS),
                     "optimizers": sorted(OPTIMIZERS)},
                    seed=SEED)
    reporter.write("cluster_scenarios")
