"""Cluster scenarios: closed-loop vs fixed momentum across delay models.

The paper's Section 5.2 evaluates asynchrony robustness under one
protocol — a fixed round-robin delay.  The cluster runtime widens the
scenario space: uniform jitter, memoryless completion, heavy-tailed
stragglers, fast/slow machine mixes, and a recorded trace replay.

For each delay model we train the same classifier with (a) hand-fixed
momentum 0.9 and (b) closed-loop YellowFin, recording final smoothed
losses and staleness profiles to ``BENCH_cluster_scenarios.json``.
What this laptop-scale record shows (and asserts): *both* optimizers
stay stable across every delay model, including heavy tails — no
divergence anywhere.  On this short-horizon, well-conditioned workload
the hand-tuned fixed momentum keeps a lower final loss (the auto-tuner
spends the early steps measuring), so the record tracks the fixed-vs-
closed-loop gap per scenario rather than declaring a winner; the
paper's regime — where hand-tuned momentum destabilizes under
staleness — needs the harder, longer workloads of the figure suite.
"""

import numpy as np

from repro import nn
from repro.autograd import Tensor, functional as F
from repro.bench import BenchReporter
from repro.cluster import (ClusterRuntime, ConstantDelay, ExponentialDelay,
                           HeterogeneousDelay, ParetoDelay,
                           TraceReplayDelay, UniformDelay)
from repro.core import ClosedLoopYellowFin
from repro.data import BatchLoader
from repro.optim import MomentumSGD
from repro.sim import staleness_summary
from benchmarks.workloads import print_table, steps

WORKERS = 4
TAU = WORKERS - 1
READS = steps(240)
SMOOTH = 25

# a short, bursty hand-recorded trace: steady 1.0s with periodic 4x
# stalls on two of the lanes
TRACE = {"workers": {
    "0": [1.0, 1.0, 1.0, 1.0],
    "1": [1.0, 1.0, 4.0, 1.0],
    "2": [1.0, 1.0, 1.0, 1.0],
    "3": [1.0, 4.0, 1.0, 1.0],
}}


# delay-model factories: each run gets a fresh, deterministically
# seeded model so the scenarios are independent and reproducible
SCENARIOS = {
    "constant": lambda: ConstantDelay(1.0),
    "uniform": lambda: UniformDelay(0.5, 1.5, seed=10),
    "exponential": lambda: ExponentialDelay(mean=0.7, floor=0.3, seed=11),
    "pareto": lambda: ParetoDelay(alpha=1.5, scale=0.5, seed=12),
    "heterogeneous": lambda: HeterogeneousDelay(
        [ConstantDelay(1.0), ConstantDelay(1.0),
         ParetoDelay(alpha=1.3, scale=0.8, seed=13),
         ConstantDelay(1.2)]),
    "trace": lambda: TraceReplayDelay(TRACE),
}


def build_problem(seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(512, 8))
    w_true = rng.normal(size=8)
    y = (x @ w_true + 0.3 * rng.normal(size=512) > 0).astype(int)
    model = nn.Sequential(nn.Linear(8, 24, seed=seed), nn.ReLU(),
                          nn.Linear(24, 2, seed=seed + 1))
    loader = BatchLoader(x, y, batch_size=32, seed=seed)

    def loss_fn():
        xb, yb = loader.next_batch()
        return F.cross_entropy(model(Tensor(xb)), yb)

    return model, loss_fn


def run_scenario(delay_model, make_opt):
    model, loss_fn = build_problem()
    opt = make_opt(model.parameters())
    runtime = ClusterRuntime(model, opt, loss_fn, workers=WORKERS,
                             delay_model=delay_model, num_shards=2)
    runtime.run(reads=READS)
    losses = runtime.log.series("loss")
    tail = float(losses[-SMOOTH:].mean())
    head = float(losses[:SMOOTH].mean())
    return {"final_loss": tail, "initial_loss": head,
            "staleness": staleness_summary(runtime.log)}


OPTIMIZERS = {
    "fixed_momentum": lambda p: MomentumSGD(p, lr=0.05, momentum=0.9,
                                            fused=True),
    "closed_loop": lambda p: ClosedLoopYellowFin(
        p, staleness=TAU, gamma=0.01, window=5, beta=0.99, fused=True),
}


def test_cluster_scenario_matrix():
    results = {}
    for scenario_name, make_delay in SCENARIOS.items():
        for opt_name, make_opt in OPTIMIZERS.items():
            results[(scenario_name, opt_name)] = run_scenario(
                make_delay(), make_opt)

    rows = []
    metrics = {}
    for scenario_name in SCENARIOS:
        fixed = results[(scenario_name, "fixed_momentum")]
        closed = results[(scenario_name, "closed_loop")]
        rows.append([
            scenario_name,
            f"{fixed['staleness']['mean']:.2f}",
            f"{fixed['staleness']['max']:.0f}",
            f"{fixed['final_loss']:.4f}",
            f"{closed['final_loss']:.4f}",
        ])
        metrics[f"{scenario_name}_fixed_final"] = fixed["final_loss"]
        metrics[f"{scenario_name}_closed_final"] = closed["final_loss"]
        metrics[f"{scenario_name}_mean_staleness"] = \
            fixed["staleness"]["mean"]
    print_table(
        f"Cluster scenarios: {WORKERS} workers, {READS} reads",
        ["delay model", "mean tau", "max tau", "fixed mu=0.9", "closed-loop"],
        rows)

    # every scenario trains: finite losses that actually decreased
    for (scenario_name, opt_name), r in results.items():
        assert np.isfinite(r["final_loss"]), (scenario_name, opt_name)
        assert r["final_loss"] < r["initial_loss"], (scenario_name, opt_name)

    # non-constant models genuinely vary the staleness process
    for scenario_name in ("uniform", "exponential", "pareto",
                          "heterogeneous", "trace"):
        summary = results[(scenario_name, "fixed_momentum")]["staleness"]
        assert summary["max"] > summary["median"], scenario_name

    # robustness record: worst-case final loss across non-constant
    # models, for both optimizers (neither may destabilize; the
    # per-scenario gap is the tracked quantity, not a winner)
    nonconstant = [s for s in SCENARIOS if s != "constant"]
    fixed_worst = max(results[(s, "fixed_momentum")]["final_loss"]
                      for s in nonconstant)
    closed_worst = max(results[(s, "closed_loop")]["final_loss"]
                       for s in nonconstant)
    metrics["fixed_worst_case"] = fixed_worst
    metrics["closed_loop_worst_case"] = closed_worst
    metrics["worst_case_ratio"] = fixed_worst / closed_worst
    print(f"\nworst-case final loss across non-constant models — "
          f"fixed: {fixed_worst:.4f}, closed-loop: {closed_worst:.4f}")
    # stability across heavy tails: worst case stays within an order of
    # magnitude of the easy constant-delay case for both optimizers
    for opt_name, worst in (("fixed_momentum", fixed_worst),
                            ("closed_loop", closed_worst)):
        base = results[("constant", opt_name)]["final_loss"]
        assert worst < 10 * base + 0.5, (opt_name, worst, base)

    reporter = BenchReporter()
    reporter.record("cluster_scenarios", metrics,
                    {"workers": WORKERS, "reads": READS,
                     "scenarios": sorted(SCENARIOS),
                     "optimizers": sorted(OPTIMIZERS)})
    reporter.write("cluster_scenarios")
