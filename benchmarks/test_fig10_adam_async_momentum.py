"""Figure 10 (Appendix J.3): tuning Adam's momentum under asynchrony.

Paper: with 16 asynchronous workers on PTB LSTM, sweeping Adam's beta1
(its momentum analogue) in {-0.2, 0.0, 0.3, 0.5, 0.7, 0.9} at the best
synchronous learning rate gives measurably different training losses —
the prescribed beta1 = 0.9 is suboptimal under asynchrony, so momentum
must be tuned there too.
"""

import numpy as np

from repro.analysis.convergence import smooth_losses
from repro.optim import Adam
from repro.tuning import run_workload
from benchmarks.workloads import print_table, ptb_workload

WORKERS = 16
SEEDS = (0,)
BETA1_GRID = (-0.2, 0.0, 0.3, 0.5, 0.7, 0.9)
ADAM_LR = 1e-2


def run_all():
    workload = ptb_workload(400)
    runs = {}
    for beta1 in BETA1_GRID:
        runs[beta1] = run_workload(
            workload, lambda p, b=beta1: Adam(p, lr=ADAM_LR, beta1=b),
            f"adam-b1={beta1}", seeds=SEEDS, async_workers=WORKERS)
    return workload, runs


def test_fig10_adam_async_momentum(benchmark):
    workload, runs = benchmark.pedantic(run_all, rounds=1, iterations=1)

    w = workload.smooth_window
    finals = {b: float(smooth_losses(r.losses, w)[-1])
              for b, r in runs.items()}
    rows = [[b, f"{finals[b]:.4f}",
             "best" if finals[b] == min(finals.values()) else ""]
            for b in BETA1_GRID]
    print_table(f"Figure 10: Adam beta1 sweep, {WORKERS} async workers "
                "(PTB-like)", ["beta1", "final smoothed loss", ""], rows)

    values = np.array(list(finals.values()))
    # the sweep matters: visible spread across beta1 values
    assert values.max() > 1.02 * values.min()
    # the paper's point: the default beta1=0.9 is NOT the async optimum
    best_beta = min(finals, key=finals.get)
    print(f"\nbest beta1 under asynchrony: {best_beta} "
          f"(prescribed default is 0.9)")
    assert best_beta != 0.9
