"""Figure 3(c,d): LSTM variables follow the sqrt(mu) rate as mu grows.

Paper: training an LSTM with a global (lr, mu), raising momentum from 0.9
to 0.99 puts the hyperparameters inside the robust region of *more* model
variables, whose convergence then follows the robust rate sqrt(mu).

Here we train a small LSTM LM by deterministic full-batch gradient descent
with momentum, track sampled scalar parameters' distance to their final
value, fit per-variable linear rates, and measure how many variables sit
at the sqrt(mu) rate for mu in {0.9, 0.99}.
"""

import numpy as np

from repro.models import LSTMLanguageModel
from repro.optim import MomentumSGD
from benchmarks.workloads import FULL_SCALE, print_table, steps

N_TRACK = 64
STEPS = steps(400)
# at full budget the fit window matches the paper protocol; scaled-down
# runs shrink it proportionally so the window stays non-empty
FIT_LO = 60 if FULL_SCALE else STEPS // 4
FIT_HI = STEPS // 2


def train_and_fit(mu: float, lr: float, seed: int = 0):
    rng = np.random.default_rng(seed)
    model = LSTMLanguageModel(vocab_size=12, embed_dim=8, hidden_size=16,
                              num_layers=1, seed=seed)
    ids = rng.integers(0, 12, size=(10, 4))
    targets = (ids + 1) % 12
    opt = MomentumSGD(model.parameters(), lr=lr, momentum=mu)

    params = model.parameters()
    sizes = [p.size for p in params]
    flat_idx = rng.choice(int(np.sum(sizes)), size=N_TRACK, replace=False)
    traj = np.empty((STEPS, N_TRACK))
    for t in range(STEPS):
        model.zero_grad()
        loss, _ = model.loss(ids, targets)
        loss.backward()
        opt.step()
        flat = np.concatenate([p.data.reshape(-1) for p in params])
        traj[t] = flat[flat_idx]

    final = traj[-1]
    dist = np.abs(traj - final)           # (STEPS, N_TRACK)
    rates = []
    t_axis = np.arange(FIT_LO, FIT_HI)
    for j in range(N_TRACK):
        d = dist[FIT_LO:FIT_HI, j]
        mask = d > 1e-13
        if mask.sum() < 10:
            continue
        slope = np.polyfit(t_axis[mask], np.log(d[mask]), 1)[0]
        rates.append(float(np.exp(slope)))
    return np.array(rates)


def fraction_at_robust_rate(rates: np.ndarray, mu: float,
                            tol: float = 0.01) -> float:
    return float(np.mean(np.abs(rates - np.sqrt(mu)) < tol))


def run():
    results = {}
    for mu, lr in ((0.9, 0.05), (0.99, 0.05)):
        results[mu] = train_and_fit(mu, lr)
    return results


def test_fig03_lstm_rates(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    fractions = {}
    for mu, rates in results.items():
        frac = fraction_at_robust_rate(rates, mu)
        fractions[mu] = frac
        rows.append([mu, f"{np.sqrt(mu):.4f}", f"{np.median(rates):.4f}",
                     f"{100 * frac:.0f}%"])
    print_table("Figure 3(c,d): per-variable convergence rates",
                ["momentum", "sqrt(mu)", "median fitted rate",
                 "variables at sqrt(mu) (+-0.01)"], rows)

    # the fits themselves must exist at any scale
    for mu, rates in results.items():
        assert rates.size > 0, f"mu={mu}: no variables fitted"
        assert np.isfinite(np.median(rates)), mu
    if FULL_SCALE:
        # paper's qualitative claim: more variables lock onto sqrt(mu)
        # at 0.99; a smoke budget leaves too few decaying iterates for
        # the rate fits to separate the two momenta
        assert fractions[0.99] > fractions[0.9]
        # and at mu=0.99 the bulk of variables follow the robust rate
        assert fractions[0.99] > 0.5
