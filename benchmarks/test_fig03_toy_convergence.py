"""Figure 3(a,b): linear convergence on the non-convex toy objective.

Paper: a 1-D non-convex function stitched from quadratics with curvatures
1 and 1000 (GCN = 1000).  Tuning (mu, lr) by rule (9) yields empirical
linear convergence at rate sqrt(mu) despite the curvature jump — momentum
is robust to curvature variation.
"""

import numpy as np

from repro.analysis.convergence import fit_linear_rate
from repro.analysis.robust_region import tune_noiseless
from repro.data.toy import make_figure3_objective, run_momentum_descent
from benchmarks.workloads import print_table

STEPS = 500
X0 = 20.0


def run():
    obj = make_figure3_objective()
    h_min, h_max = 1.0, 1000.0  # the construction's curvature range
    # margin keeps (mu, lr) strictly inside the robust region; at exactly
    # mu* the boundary operators are defective and can resonate (the
    # paper's own composition-of-operators caveat).
    mu, lr = tune_noiseless(h_min, h_max, margin=0.02)
    dist = run_momentum_descent(obj, X0, lr, mu, STEPS)
    return obj, mu, lr, dist


def test_fig03_toy_convergence(benchmark):
    obj, mu, lr, dist = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[t, f"{dist[t]:.3e}", f"{X0 * np.sqrt(mu) ** t:.3e}"]
            for t in (0, 50, 100, 200, 300, 400, 500)]
    print_table(
        f"Figure 3(b): distance from optimum (mu={mu:.4f}, lr={lr:.2e})",
        ["iteration", "measured |x_t|", "sqrt(mu)^t * |x_0|"], rows)

    # the trajectory must reach deep into the sharp region and keep
    # converging linearly at ~sqrt(mu); fit the tail rate
    assert dist[-1] < 1e-4 * X0
    rate = fit_linear_rate(dist, burn_in=50)
    print(f"\nfitted linear rate: {rate:.5f}  "
          f"(prediction sqrt(mu) = {np.sqrt(mu):.5f})")
    np.testing.assert_allclose(rate, np.sqrt(mu), atol=0.02)
    # curvature really does vary by ~3 orders of magnitude along the path
    hs = [obj.generalized_curvature(x)
          for x in np.linspace(0.05, X0, 200)]
    assert max(hs) / min(hs) > 15.0
