"""Ablation: the closed-loop controller's feedback gain gamma.

Algorithm 5 fixes gamma = 0.01.  This bench sweeps the gain on the
16-worker asynchronous workload and reports how well measured total
momentum tracks the SingleStep target — too small a gain never catches
up, too large a gain oscillates; the paper's choice sits in the stable
band.
"""

import numpy as np

from repro import nn
from repro.autograd import Tensor, functional as F
from repro.data import BatchLoader
from repro.sim import train_async
from benchmarks.workloads import closed_loop_yellowfin, print_table, steps

WORKERS = 16
STEPS = steps(300)
WIN = slice(40, 160)  # training-active measurement window
GAMMAS = (0.001, 0.01, 0.1)


def build(seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(512, 8))
    w_true = rng.normal(size=8)
    y = (x @ w_true + 0.3 * rng.normal(size=512) > 0).astype(int)
    model = nn.Sequential(nn.Linear(8, 24, seed=seed), nn.ReLU(),
                          nn.Linear(24, 2, seed=seed + 1))
    loader = BatchLoader(x, y, batch_size=32, seed=seed)

    def loss_fn():
        xb, yb = loader.next_batch()
        return F.cross_entropy(model(Tensor(xb)), yb)

    return model, loss_fn


def run_gamma(gamma):
    model, loss_fn = build()
    opt = closed_loop_yellowfin(model.parameters(), staleness=WORKERS - 1,
                                gamma=gamma)
    log = train_async(model, opt, loss_fn, steps=STEPS, workers=WORKERS)
    total = log.series("total_momentum")[WIN]
    target = log.series("target_momentum")[WIN]
    gap = float(np.nanmedian(np.abs(total - target)))
    wobble = float(np.nanstd(log.series("algorithmic_momentum")[WIN]))
    return {"gap": gap, "wobble": wobble,
            "final_loss": float(np.mean(log.series("loss")[-30:]))}


def run_all():
    return {g: run_gamma(g) for g in GAMMAS}


def test_ablation_closed_loop_gain(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [[g, f"{r['gap']:.3f}", f"{r['wobble']:.3f}",
             f"{r['final_loss']:.3f}"] for g, r in results.items()]
    print_table("Ablation: closed-loop feedback gain gamma "
                f"({WORKERS} async workers)",
                ["gamma", "median |total - target|",
                 "algorithmic-mu wobble", "final loss"], rows)

    # all gains keep training stable on this workload
    for g, r in results.items():
        assert np.isfinite(r["final_loss"]), f"gamma={g} diverged"
    # larger gains chase the target harder, so the controller moves more
    wobbles = [results[g]["wobble"] for g in GAMMAS]
    assert wobbles[0] < wobbles[-1]
    # the paper's gamma=0.01 tracks at least as well as the sluggish gain
    assert results[0.01]["gap"] <= results[0.001]["gap"] * 1.5
