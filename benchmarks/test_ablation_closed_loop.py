"""Ablation: the closed-loop controller's feedback gain gamma.

Algorithm 5 fixes gamma = 0.01.  This bench sweeps the gain on the
16-worker asynchronous workload and reports how well measured total
momentum tracks the SingleStep target — too small a gain never catches
up, too large a gain oscillates; the paper's choice sits in the stable
band.

The sweep is a one-axis :class:`repro.xp.Matrix` over
``optimizer_params.gamma``, executed by the unified
:func:`repro.run.run` API; momentum traces needed by the
assertions ride along in each scenario record's requested series.
"""

import numpy as np

from repro.run import run
from repro.xp import Matrix, ScenarioSpec
from benchmarks.workloads import print_table, steps

WORKERS = 16
STEPS = steps(300)
WIN = slice(40, 160)  # training-active measurement window
GAMMAS = (0.001, 0.01, 0.1)

MATRIX = Matrix(
    base=ScenarioSpec(
        name="ablation_gamma", workload="toy_classifier", seed=0,
        workers=WORKERS, reads=STEPS, smooth=30,
        optimizer="closed_loop_yellowfin",
        optimizer_params={"staleness": WORKERS - 1, "gamma": 0.01,
                          "window": 5, "beta": 0.99},
        record_series=("loss", "total_momentum", "target_momentum",
                       "algorithmic_momentum")),
    axes={"gamma": {f"{g:g}": {"optimizer_params.gamma": g}
                    for g in GAMMAS}})


def summarize(result):
    """Tracking gap / controller wobble / final loss of one gamma run."""
    total = np.asarray(result.series["total_momentum"])[WIN]
    target = np.asarray(result.series["target_momentum"])[WIN]
    losses = np.asarray(result.series["loss"])
    gap = float(np.nanmedian(np.abs(total - target)))
    wobble = float(np.nanstd(
        np.asarray(result.series["algorithmic_momentum"])[WIN]))
    return {"gap": gap, "wobble": wobble,
            "final_loss": float(np.mean(losses[-30:]))}


def run_all():
    # no cache (always measure); pool defaults to all cores, capped
    # by REPRO_XP_JOBS
    records = run(MATRIX.expand(), backend="parallel").results
    return {g: summarize(r) for g, r in zip(GAMMAS, records)}


def test_ablation_closed_loop_gain(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [[g, f"{r['gap']:.3f}", f"{r['wobble']:.3f}",
             f"{r['final_loss']:.3f}"] for g, r in results.items()]
    print_table("Ablation: closed-loop feedback gain gamma "
                f"({WORKERS} async workers)",
                ["gamma", "median |total - target|",
                 "algorithmic-mu wobble", "final loss"], rows)

    # all gains keep training stable on this workload
    for g, r in results.items():
        assert np.isfinite(r["final_loss"]), f"gamma={g} diverged"
    # larger gains chase the target harder, so the controller moves more
    wobbles = [results[g]["wobble"] for g in GAMMAS]
    assert wobbles[0] < wobbles[-1]
    # the paper's gamma=0.01 tracks at least as well as the sluggish gain
    assert results[0.01]["gap"] <= results[0.001]["gap"] * 1.5
