"""Replicate-axis engine: speedup gate and statistical figure records.

Two measurements land in ``BENCH_vec_replicates.json``:

1. **The replicate-axis speedup** — the headline systems claim of the
   ``repro.vec`` engine: an 8-replicate scenario through the batched
   lockstep engine versus 8 serial runs of the scalar path, on the
   vectorized noisy-quadratic workload.  The records are bit-identical
   (the differential suite enforces it); this test gates the ≥5x
   wall-clock payoff.
2. **Error bars for a headline claim** — the Fig. 9-style
   momentum-adaptivity comparison, rerun as seed-replicate statistics:
   auto-tuned YellowFin momentum versus prescribed mu∈{0.0, 0.9} with
   per-arm mean ± 95% CI final losses.  What used to be single-seed
   folklore becomes a confidence-interval claim at negligible cost,
   because the replicate axis is batched.
"""

import time

import numpy as np

from repro.bench import BenchReporter, replicate_statistics
from repro.run import run
from repro.xp import ScenarioSpec
from benchmarks.workloads import FULL_SCALE, print_table, steps

REPLICATES = 8
SEED = 0
DIM = 128
SPEEDUP_BAR = 5.0


def speed_spec(reads):
    return ScenarioSpec(
        name="vec_replicates", workload="quadratic_bowl",
        workload_params={"dim": DIM, "noise_horizon": 128},
        optimizer="momentum_sgd",
        optimizer_params={"lr": 0.02, "momentum": 0.5, "fused": True},
        delay={"kind": "constant", "delay": 1.0},
        workers=4, reads=reads, seed=SEED, smooth=25,
        replicates=REPLICATES)


def adaptivity_spec(mu, reads):
    params = {"beta": 0.99, "window": 5, "fused": True}
    if mu is not None:
        params["prescribed_momentum"] = mu
    return ScenarioSpec(
        name=f"vec_adaptivity_mu_{mu}", workload="quadratic_bowl",
        workload_params={"dim": DIM, "noise_horizon": 128,
                         "noise": 0.05},
        optimizer="yellowfin", optimizer_params=params,
        delay={"kind": "constant", "delay": 1.0},
        workers=4, reads=reads, seed=SEED, smooth=25, replicates=6)


def test_vec_replicate_speedup_and_error_bars():
    reads = steps(800)
    spec = speed_spec(reads)

    # warm both paths (imports, allocator) before timing
    run(spec.replicate_spec(0), backend="serial")
    run(spec, backend="vec")

    repeats = 3
    serial_walls, batched_walls = [], []
    for _ in range(repeats):
        t0 = time.perf_counter()
        serial = [run(spec.replicate_spec(r), backend="serial").result
                  for r in range(REPLICATES)]
        serial_walls.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        batched = run(spec, backend="vec").result
        batched_walls.append(time.perf_counter() - t0)
    serial_wall = min(serial_walls)
    batched_wall = min(batched_walls)
    speedup = serial_wall / batched_wall

    assert batched.env["vec_engine"] == "batched"
    # the whole point: batched == serial, bit for bit, per replicate
    for r, scalar in enumerate(serial):
        assert batched.replicate_metrics[r]["final_loss"] == \
            scalar.metrics["final_loss"], r

    stats = replicate_statistics([s.metrics for s in serial])
    print_table(
        f"Replicate engine: {REPLICATES} replicates, {reads} reads",
        ["path", "wall (ms)", "per replicate (ms)"],
        [["serial scalar", f"{serial_wall * 1e3:.1f}",
          f"{serial_wall / REPLICATES * 1e3:.1f}"],
         ["batched vec", f"{batched_wall * 1e3:.1f}",
          f"{batched_wall / REPLICATES * 1e3:.1f}"]])
    print(f"\nreplicate-axis speedup: {speedup:.2f}x "
          f"(gate: >= {SPEEDUP_BAR:.0f}x)")
    print(f"final loss across replicates: "
          f"{stats['final_loss']:.4f} ± {stats['final_loss_ci95']:.4f}"
          f" (95% CI)")

    # momentum adaptivity with error bars (Fig. 9 claim, statistical)
    adaptivity_reads = steps(400)
    arms = {"adaptive": None, "mu=0.0": 0.0, "mu=0.9": 0.9}
    arm_results = {label: run(adaptivity_spec(mu, adaptivity_reads),
                              backend="vec").result
                   for label, mu in arms.items()}
    rows = []
    for label, result in arm_results.items():
        m = result.metrics
        rows.append([label, f"{m['final_loss']:.4f}",
                     f"±{m['final_loss_ci95']:.4f}",
                     f"{m['final_loss_std']:.4f}"])
    print_table("Momentum adaptivity, 6 replicates (mean ± 95% CI)",
                ["momentum", "final loss", "ci95", "std"], rows)

    adaptive = arm_results["adaptive"].metrics
    fixed0 = arm_results["mu=0.0"].metrics
    # the paper's direction, now stated with uncertainty: adaptive
    # momentum beats the no-momentum ablation beyond the joint CI
    assert adaptive["final_loss"] + adaptive["final_loss_ci95"] < \
        fixed0["final_loss"] + fixed0["final_loss_ci95"] * 2
    for result in arm_results.values():
        assert result.metrics["diverged"] == 0.0

    metrics = {
        "speedup_8x": speedup,
        "serial_wall_s": serial_wall,
        "batched_wall_s": batched_wall,
        "final_loss": stats["final_loss"],
        "final_loss_std": stats["final_loss_std"],
        "final_loss_ci95": stats["final_loss_ci95"],
        "replicates": float(REPLICATES),
        "adaptive_final_loss": adaptive["final_loss"],
        "adaptive_final_loss_ci95": adaptive["final_loss_ci95"],
        "mu0_final_loss": fixed0["final_loss"],
        "mu0_final_loss_ci95": fixed0["final_loss_ci95"],
        "mu9_final_loss": arm_results["mu=0.9"].metrics["final_loss"],
    }
    reporter = BenchReporter()
    reporter.record("vec_replicates", metrics,
                    {"replicates": REPLICATES, "reads": reads,
                     "dim": DIM, "workers": 4,
                     "optimizer": "momentum_sgd"}, seed=SEED)
    reporter.write("vec_replicates")

    # the acceptance gate, at every scale: the batched engine must make
    # the replicate axis at least 5x cheaper than serial execution
    assert speedup >= SPEEDUP_BAR, (
        f"replicate-axis speedup {speedup:.2f}x below the "
        f"{SPEEDUP_BAR:.0f}x bar (serial {serial_wall:.3f}s, "
        f"batched {batched_wall:.3f}s)")
    if FULL_SCALE:
        # full budget: comfortably past the bar
        assert speedup >= SPEEDUP_BAR * 1.2
