"""Figure 9 (Appendix J.2): momentum adaptivity matters.

Paper: feed the momentum-SGD underlying YellowFin a *prescribed* momentum
(0.0 or 0.9) while YF still tunes the learning rate; adaptively-tuned
momentum converges observably faster on both TS LSTM and CIFAR100 ResNet.
"""

import numpy as np

from repro.analysis.convergence import smooth_losses
from repro.tuning import run_workload
from benchmarks.workloads import (cifar100_workload, print_series,
                                  ts_workload, yellowfin)

SEEDS = (0,)


def run_all():
    out = {}
    for workload in (ts_workload(300), cifar100_workload(350)):
        runs = {
            "YellowFin (adaptive mu)": run_workload(
                workload, lambda p: yellowfin(p), "yf", seeds=SEEDS),
            "YF mu=0.0": run_workload(
                workload, lambda p: yellowfin(p, prescribed_momentum=0.0),
                "yf-mu0", seeds=SEEDS),
            "YF mu=0.9": run_workload(
                workload, lambda p: yellowfin(p, prescribed_momentum=0.9),
                "yf-mu9", seeds=SEEDS),
        }
        out[workload.name] = (workload, runs)
    return out


def test_fig09_momentum_adaptivity(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    better_count = 0
    for name, (workload, runs) in results.items():
        w = workload.smooth_window
        curves = {k: smooth_losses(r.losses, w) for k, r in runs.items()}
        ticks = [0, 100, 200, workload.steps - 1]
        print_series(f"Figure 9: {name}", ticks, curves)

        adaptive = curves["YellowFin (adaptive mu)"][-1]
        fixed_best = min(curves["YF mu=0.0"][-1], curves["YF mu=0.9"][-1])
        if adaptive <= fixed_best * 1.05:
            better_count += 1
        # core "momentum matters" claim: tuned momentum always beats the
        # no-momentum ablation
        assert adaptive < curves["YF mu=0.0"][-1] * 1.02, \
            f"adaptive momentum did not beat mu=0 on {name}"

    # paper: adaptivity beats both prescribed values on both workloads; at
    # this scale (where YF's variance estimate is conservative on the
    # 100-class ResNet — see EXPERIMENTS.md) require it on at least one
    assert better_count >= 1
