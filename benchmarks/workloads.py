"""Shared scaled-down workload definitions for the benchmark suite.

These are the five evaluation workloads of the paper's Section 5 (Table 2 /
Figures 5 and 8) rebuilt at laptop scale (see DESIGN.md for the
substitution rationale):

=============  =============================  ===========================
paper          here                           builder
=============  =============================  ===========================
CIFAR10        synthetic 10-class images      :func:`cifar10_workload`
               + basic-block ResNet
CIFAR100       synthetic 100-class images     :func:`cifar100_workload`
               + bottleneck ResNet
PTB            word-level Markov corpus       :func:`ptb_workload`
               + 2-layer LSTM
TS             char-level Markov corpus       :func:`ts_workload`
               + 2-layer LSTM
WSJ            bracketed-treebank LM          :func:`wsj_workload`
               + 3-layer LSTM
=============  =============================  ===========================

Scale adjustments (documented in EXPERIMENTS.md): YellowFin's sliding
window and EMA beta shrink proportionally with run length (the paper uses
w=20, beta=0.999 against 20k-120k iterations; we run a few hundred), so
the slow-start fraction and estimator adaptation time stay comparable.
"""

from __future__ import annotations

import os
from typing import Callable, Tuple

import numpy as np

from repro.core import ClosedLoopYellowFin, YellowFin
from repro.data import (SequenceLoader, make_ptb_like, make_ts_like,
                        make_wsj_like)
from repro.models import LSTMLanguageModel
from repro.nn import LSTM
from repro.tuning import Workload
from repro.xp.workloads import cifar10_resnet, cifar100_resnet

# Global scale knob: REPRO_BENCH_SCALE=0.25 quarters all step counts for a
# fast smoke pass of the whole suite.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

# Strict figure/table claims (thresholds, rankings, speedup bars) are
# calibrated for full-budget runs; scaled-down smoke passes keep only
# stability/direction sanity checks.  Tests gate on this flag.
FULL_SCALE = SCALE >= 1.0

# tuner constants scaled for few-hundred-step runs
YF_WINDOW = 5
YF_BETA = 0.99


def steps(n: int) -> int:
    return max(20, int(n * SCALE))


def yellowfin(params, **kwargs):
    """YellowFin with bench-scale smoothing constants."""
    kwargs.setdefault("window", YF_WINDOW)
    kwargs.setdefault("beta", YF_BETA)
    return YellowFin(params, **kwargs)


def closed_loop_yellowfin(params, staleness: int, **kwargs):
    kwargs.setdefault("window", YF_WINDOW)
    kwargs.setdefault("beta", YF_BETA)
    return ClosedLoopYellowFin(params, staleness=staleness, **kwargs)


# ------------------------------------------------------------------ #
# image workloads (builders live in the repro.xp workload registry —
# the defaults there ARE this suite's historical configuration, so the
# figure scripts and xp scenarios share one definition)
# ------------------------------------------------------------------ #
def cifar10_workload(n_steps: int = 400) -> Workload:
    return Workload(name="CIFAR10-like ResNet", build=cifar10_resnet(),
                    steps=steps(n_steps), smooth_window=30)


def cifar100_workload(n_steps: int = 400) -> Workload:
    return Workload(name="CIFAR100-like ResNet", build=cifar100_resnet(),
                    steps=steps(n_steps), smooth_window=30)


# ------------------------------------------------------------------ #
# text workloads
# ------------------------------------------------------------------ #
def _lm_builder(make_corpus, embed_dim, hidden, layers,
                batch_size=8, seq_len=12) -> Callable:
    def build(seed: int):
        corpus = make_corpus(seed)
        train_tokens, _ = corpus_tokens(corpus)
        model = LSTMLanguageModel(vocab_size=corpus_vocab(corpus),
                                  embed_dim=embed_dim, hidden_size=hidden,
                                  num_layers=layers, seed=seed)
        loader = SequenceLoader(train_tokens, batch_size=batch_size,
                                seq_len=seq_len)
        state_box = [None]

        def loss_fn():
            ids, targets = loader.next_batch()
            model.zero_grad()
            loss, new_state = model.loss(ids, targets, state_box[0])
            state_box[0] = LSTM.detach_state(new_state)
            return loss

        return model, loss_fn

    return build


def corpus_tokens(corpus) -> Tuple[np.ndarray, np.ndarray]:
    return corpus.split(0.9)


def corpus_vocab(corpus) -> int:
    return getattr(corpus, "vocab_size", None) or corpus.transitions.shape[0]


def ptb_workload(n_steps: int = 300) -> Workload:
    return Workload(
        name="PTB-like word LSTM",
        build=_lm_builder(lambda seed: make_ptb_like(seed=seed, length=6000,
                                                     vocab_size=120),
                          embed_dim=16, hidden=32, layers=2),
        steps=steps(n_steps), smooth_window=25)


def ts_workload(n_steps: int = 300) -> Workload:
    return Workload(
        name="TS-like char LSTM",
        build=_lm_builder(lambda seed: make_ts_like(seed=seed, length=6000),
                          embed_dim=16, hidden=32, layers=2),
        steps=steps(n_steps), smooth_window=25)


def wsj_workload(n_steps: int = 300) -> Workload:
    return Workload(
        name="WSJ-like parsing LSTM",
        build=_lm_builder(lambda seed: make_wsj_like(seed=seed,
                                                     num_sentences=900),
                          embed_dim=16, hidden=32, layers=3),
        steps=steps(n_steps), smooth_window=25)


# ------------------------------------------------------------------ #
# reporting helpers
# ------------------------------------------------------------------ #
def print_table(title: str, headers, rows) -> None:
    """Plain-text table in the paper's style."""
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
              for i, h in enumerate(headers)]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def print_series(title: str, checkpoints, series: dict) -> None:
    """Print named loss curves sampled at checkpoints (a text 'figure')."""
    headers = ["iteration"] + list(series)
    rows = []
    for t in checkpoints:
        row = [t]
        for vals in series.values():
            idx = min(t, len(vals) - 1)
            row.append(f"{vals[idx]:.4f}")
        rows.append(row)
    print_table(title, headers, rows)
