"""Lazy engine: fused-realization speedup gate on recurrent workloads.

The headline systems claim of :mod:`repro.lazy`: recording a whole
training step (forward + backward) as one graph and realizing it with
CSE, fusion planning, and buffer recycling beats eager op-at-a-time
execution on the allocation-bound recurrent models this repo actually
trains.  Two measurements land in ``BENCH_lazy_fusion.json``:

1. **LSTM language-model step** — the gated headline: a
   (T=32, N=4096) batch through a 128-unit LSTM LM, lazy vs eager,
   min-of-repeats wall clock.  The records are bit-identical (the
   differential suite in ``tests/test_lazy_differential.py`` enforces
   the op class; this test re-asserts loss and every parameter
   gradient on the measured runs), so the >=1.5x payoff is pure
   execution strategy, not a semantics change.
2. **Seq2seq step** — encoder/decoder LSTM with summary feeding, the
   paper's Table 1 model shape; recorded but not speed-gated (its
   graph is deeper and less batch-heavy, so the win is smaller).

Temporary-allocation counts ride along: eager allocates one fresh
array per executed op (the lazy plan's ``nodes_executed`` counts
exactly those ops), while a warm lazy runtime reuses pooled buffers
and only allocates ``alloc_new`` fresh ones per step.
"""

import time

import numpy as np

from repro.bench import BenchReporter
from repro.lazy import LazyRuntime, lazy_mode
from repro.models import LSTMLanguageModel, Seq2Seq
from benchmarks.workloads import FULL_SCALE, SCALE, print_table

SEED = 3
REPEATS = 3
SPEEDUP_BAR = 1.5   # full-scale gate on the LSTM LM headline
SMOKE_BAR = 1.1     # quarter-scale batches shrink (not remove) the
                    # allocator pathology; direction must still hold

# headline shape: batch large enough that eager temporaries cross the
# glibc mmap threshold (every eager op then pays a fresh mmap+fault
# cycle, which pooled lazy buffers amortize away).  T=32 keeps the
# per-step op count high so the gap stays wide regardless of the
# allocator history the surrounding suite leaves behind — at T=16 the
# margin over the bar was thin enough to flake when this file ran
# late in a long pytest process.
VOCAB, EMBED, HIDDEN, LAYERS, SEQ = 100, 128, 128, 1, 32
BATCH = max(512, int(4096 * SCALE))
S2S_BATCH = max(256, int(2048 * SCALE))


def _best(fn, repeats=REPEATS):
    walls = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        walls.append(time.perf_counter() - t0)
    return min(walls)


def _grads(model):
    return {name: p.grad.copy() for name, p in model.named_parameters()}


def _measure(build, run_loss, batch_label):
    """Time one training step eager vs lazy and assert bit-identity.

    Returns a metrics dict: wall clocks, speedup, and per-step
    temporary-allocation counts for both strategies.
    """
    eager_model, lazy_model = build(), build()
    runtime = LazyRuntime()

    def eager_step():
        eager_model.zero_grad()
        loss = run_loss(eager_model)
        loss.backward()
        return float(loss.data)

    def lazy_step():
        with lazy_mode(runtime=runtime):
            lazy_model.zero_grad()
            loss = run_loss(lazy_model)
            loss.backward()
        return float(loss.data)

    # warm both paths (imports, allocator, buffer pool) before timing,
    # and pin the engine's core contract on the measured models
    eager_loss = eager_step()
    lazy_loss = lazy_step()
    assert lazy_loss == eager_loss, batch_label
    eager_grads, lazy_grads = _grads(eager_model), _grads(lazy_model)
    for name in eager_grads:
        assert np.array_equal(eager_grads[name], lazy_grads[name]), (
            f"{batch_label}: grad mismatch for {name}")

    allocs0 = runtime.stats.alloc_new
    nodes0 = runtime.stats.nodes_executed
    eager_wall = _best(eager_step)
    lazy_wall = _best(lazy_step)
    lazy_allocs = (runtime.stats.alloc_new - allocs0) / REPEATS
    nodes_per_step = (runtime.stats.nodes_executed - nodes0) / REPEATS

    return {
        "eager_wall_s": eager_wall,
        "lazy_wall_s": lazy_wall,
        "speedup": eager_wall / lazy_wall,
        # eager materializes every op's output fresh; warm lazy steps
        # only allocate what the pool could not supply
        "eager_temp_allocs": nodes_per_step,
        "lazy_temp_allocs": lazy_allocs,
        "pool_hits": float(runtime.stats.pool_hits),
        "fused_nodes": float(runtime.stats.fused_nodes),
        "cse_hits": float(runtime.stats.cse_hits),
    }


def test_lazy_fusion_speedup():
    rng = np.random.default_rng(0)
    ids = rng.integers(0, VOCAB, size=(SEQ, BATCH))
    targets = rng.integers(0, VOCAB, size=(SEQ, BATCH))
    lstm = _measure(
        lambda: LSTMLanguageModel(VOCAB, embed_dim=EMBED,
                                  hidden_size=HIDDEN,
                                  num_layers=LAYERS, seed=SEED),
        lambda m: m.loss(ids, targets)[0],
        f"lstm_lm T={SEQ} N={BATCH}")

    src = rng.integers(0, VOCAB, size=(12, S2S_BATCH))
    tgt = rng.integers(0, VOCAB, size=(12, S2S_BATCH))
    s2s = _measure(
        lambda: Seq2Seq(VOCAB, embed_dim=96, hidden_size=96,
                        seed=SEED + 2),
        lambda m: m.loss(src, tgt),
        f"seq2seq T=12 N={S2S_BATCH}")

    rows = []
    for label, m in (("LSTM LM", lstm), ("seq2seq", s2s)):
        rows.append([label, f"{m['eager_wall_s'] * 1e3:.0f}",
                     f"{m['lazy_wall_s'] * 1e3:.0f}",
                     f"{m['speedup']:.2f}x",
                     f"{m['eager_temp_allocs']:.0f}",
                     f"{m['lazy_temp_allocs']:.0f}"])
    print_table(
        f"Lazy fused realization vs eager (batch {BATCH}, min of "
        f"{REPEATS})",
        ["model", "eager (ms)", "lazy (ms)", "speedup",
         "eager allocs/step", "lazy allocs/step"], rows)

    # a warm lazy step must genuinely recycle: strictly fewer fresh
    # temporaries than the one-array-per-op eager strategy
    for label, m in (("lstm", lstm), ("seq2seq", s2s)):
        assert m["lazy_temp_allocs"] < m["eager_temp_allocs"], label
        assert m["pool_hits"] > 0, label

    metrics = {
        "lstm_speedup": lstm["speedup"],
        "lstm_eager_wall_s": lstm["eager_wall_s"],
        "lstm_lazy_wall_s": lstm["lazy_wall_s"],
        "lstm_eager_temp_allocs": lstm["eager_temp_allocs"],
        "lstm_lazy_temp_allocs": lstm["lazy_temp_allocs"],
        "s2s_speedup": s2s["speedup"],
        "s2s_eager_wall_s": s2s["eager_wall_s"],
        "s2s_lazy_wall_s": s2s["lazy_wall_s"],
        "s2s_eager_temp_allocs": s2s["eager_temp_allocs"],
        "s2s_lazy_temp_allocs": s2s["lazy_temp_allocs"],
    }
    reporter = BenchReporter()
    reporter.record("lazy_fusion", metrics,
                    {"vocab": VOCAB, "embed": EMBED, "hidden": HIDDEN,
                     "layers": LAYERS, "seq": SEQ, "batch": BATCH,
                     "s2s_batch": S2S_BATCH, "repeats": REPEATS},
                    seed=SEED)
    reporter.write("lazy_fusion")

    # the acceptance gate: fused realization must make the headline
    # recurrent step at least 1.5x cheaper than eager at full scale
    bar = SPEEDUP_BAR if FULL_SCALE else SMOKE_BAR
    assert lstm["speedup"] >= bar, (
        f"lazy speedup {lstm['speedup']:.2f}x below the {bar:.2f}x bar "
        f"(eager {lstm['eager_wall_s']:.3f}s, "
        f"lazy {lstm['lazy_wall_s']:.3f}s)")
