"""Table 1: seq2seq stability — adaptive clipping vs. manual clipping.

Paper (IWSLT14 De-En conv seq2seq): the default optimizer (lr 0.25,
Nesterov momentum 0.99) diverges to loss overflow without gradient
clipping; with a manually-set norm threshold (0.1) it trains; YellowFin
with adaptive clipping trains stably and reaches a better loss / BLEU.

Our stand-in: an LSTM encoder-decoder initialized in the exploding-
gradient regime (recurrent gain > 1) on a synthetic translation task.
"""

import numpy as np

np.seterr(over="ignore")  # the no-clip run is *supposed* to overflow

from repro.data import make_iwslt_like
from repro.data.translation import bleu_like
from repro.models import Seq2Seq
from repro.optim import MomentumSGD
from repro.sim import TrainerHooks, train_sync
from benchmarks.workloads import (FULL_SCALE, print_table, steps,
                                  yellowfin)

STEPS = steps(1000)
GAIN = 1.3          # ReLU-decoder positive feedback: exploding regime
DEFAULT_LR = 0.25   # the paper's default optimizer
DEFAULT_MU = 0.99
MANUAL_CLIP = 0.1   # the paper's manually-set norm threshold


def build(seed=0):
    data = make_iwslt_like(seed=seed, train_size=256)
    model = Seq2Seq(vocab_size=data.vocab_size, embed_dim=12, hidden_size=24,
                    gain=GAIN, decoder_cell="rnn_relu", seed=seed)
    rng = np.random.default_rng(seed)

    def loss_fn():
        idx = rng.integers(0, data.train_size, size=8)
        src = data.src_train[idx].T
        tgt = data.tgt_train[idx].T
        return model.loss(src, tgt)

    return data, model, loss_fn


def evaluate(model, data):
    pred = model.greedy_decode(data.src_test[:64].T, data.seq_len)
    return bleu_like(pred.T, data.tgt_test[:64])


def run_all():
    results = {}

    # 1. default optimizer, no clipping -> diverges
    data, model, loss_fn = build()
    opt = MomentumSGD(model.parameters(), lr=DEFAULT_LR, momentum=DEFAULT_MU,
                      nesterov=True)
    log = train_sync(model, opt, loss_fn, steps=STEPS,
                     hooks=TrainerHooks(stop_on_divergence=1e4))
    results["default w/o clip"] = {
        "diverged": "diverged" in log,
        "loss": float(log.series("loss")[-1]),
        "bleu": float("nan"),
    }

    # 2. default optimizer + manual clipping threshold
    data, model, loss_fn = build()
    opt = MomentumSGD(model.parameters(), lr=DEFAULT_LR, momentum=DEFAULT_MU,
                      nesterov=True)
    log = train_sync(model, opt, loss_fn, steps=STEPS,
                     hooks=TrainerHooks(grad_clip_norm=MANUAL_CLIP,
                                        stop_on_divergence=1e4))
    results["default w/ clip"] = {
        "diverged": "diverged" in log,
        "loss": float(np.mean(log.series("loss")[-20:])),
        "bleu": evaluate(model, data),
    }

    # 3. YellowFin with adaptive clipping
    data, model, loss_fn = build()
    opt = yellowfin(model.parameters(), adaptive_clip=True)
    log = train_sync(model, opt, loss_fn, steps=STEPS,
                     hooks=TrainerHooks(stop_on_divergence=1e4))
    results["YF (adaptive clip)"] = {
        "diverged": "diverged" in log,
        "loss": float(np.mean(log.series("loss")[-20:])),
        "bleu": evaluate(model, data),
    }
    return results


def test_tab01_seq2seq_clipping(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, r in results.items():
        loss = "diverge" if r["diverged"] else f"{r['loss']:.3f}"
        bleu = "-" if np.isnan(r["bleu"]) else f"{r['bleu']:.2f}"
        rows.append([name, loss, bleu])
    print_table("Table 1: synthetic De-En translation (exploding-gradient "
                "seq2seq)", ["optimizer", "loss", "BLEU-like"], rows)

    # paper row 1: the default optimizer diverges without clipping
    assert results["default w/o clip"]["diverged"]
    # rows 2-3: both clipped runs remain stable
    assert not results["default w/ clip"]["diverged"]
    assert not results["YF (adaptive clip)"]["diverged"]
    # paper's headline: YF beats the manually-clipped default — a
    # full-budget ranking (YF's tuner needs the measurement phase)
    if FULL_SCALE:
        assert results["YF (adaptive clip)"]["loss"] <= \
            results["default w/ clip"]["loss"] * 1.05
