"""The repro.bench harness: timers, records, runners."""

import json
import os

import numpy as np
import pytest

from repro.bench import (BenchRecord, BenchReporter, WallTimer,
                         compare_benchmark, load_record, run_benchmark,
                         time_fn)


class TestTimers:
    def test_wall_timer_measures_something(self):
        with WallTimer() as t:
            sum(range(10000))
        assert t.elapsed > 0.0

    def test_time_fn_counts_calls(self):
        calls = []
        stats = time_fn(lambda: calls.append(1), repeats=3, calls=4,
                        warmup=2)
        assert len(calls) == 2 + 3 * 4
        assert len(stats.samples) == 3
        assert stats.best <= stats.median <= max(stats.samples)
        assert stats.per_call("median") == stats.median / 4

    def test_time_fn_validation(self):
        with pytest.raises(ValueError):
            time_fn(lambda: None, repeats=0)
        with pytest.raises(ValueError):
            time_fn(lambda: None, calls=0)

    def test_median_even_count(self):
        stats = time_fn(lambda: None, repeats=4)
        ordered = sorted(stats.samples)
        assert stats.median == pytest.approx(
            0.5 * (ordered[1] + ordered[2]))


class TestReporter:
    def test_record_roundtrip(self, tmp_path):
        reporter = BenchReporter(out_dir=str(tmp_path))
        reporter.record("unit", {"wall_s": 1.5}, {"steps": 10})
        (path,) = reporter.write("unit")
        assert os.path.basename(path) == "BENCH_unit.json"
        loaded = load_record(path)
        assert loaded.name == "unit"
        assert loaded.metrics["wall_s"] == 1.5
        assert loaded.params["steps"] == 10
        assert "numpy" in loaded.env

    def test_env_dir_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        reporter = BenchReporter()
        assert reporter.out_dir == str(tmp_path)

    def test_write_all(self, tmp_path):
        reporter = BenchReporter(out_dir=str(tmp_path))
        reporter.record("a", {"x": 1.0})
        reporter.record("b", {"x": 2.0})
        paths = reporter.write()
        assert len(paths) == 2
        names = {json.load(open(p))["name"] for p in paths}
        assert names == {"a", "b"}


class TestRunners:
    def test_run_benchmark_writes_record(self, tmp_path):
        reporter = BenchReporter(out_dir=str(tmp_path))
        record = run_benchmark("smoke", lambda: np.dot(np.ones(64),
                                                       np.ones(64)),
                               repeats=2, calls=3,
                               params={"n": 64},
                               extra_metrics={"flops": 128.0},
                               reporter=reporter)
        assert record.metrics["repeats"] == 2
        assert record.metrics["flops"] == 128.0
        path = os.path.join(str(tmp_path), "BENCH_smoke.json")
        assert os.path.exists(path)

    def test_compare_benchmark_speedup_direction(self, tmp_path):
        reporter = BenchReporter(out_dir=str(tmp_path))
        slow_n, fast_n = 200_000, 10
        slow = np.ones(slow_n)
        fast = np.ones(fast_n)
        record = compare_benchmark(
            "ratio", baseline=lambda: np.dot(slow, slow),
            candidate=lambda: np.dot(fast, fast),
            repeats=3, calls=5, reporter=reporter)
        assert record.metrics["speedup"] > 1.0
        assert "baseline_median_s" in record.metrics
        assert "candidate_median_s" in record.metrics

    def test_no_write_flag(self, tmp_path):
        reporter = BenchReporter(out_dir=str(tmp_path))
        run_benchmark("dry", lambda: None, repeats=1, reporter=reporter,
                      write=False)
        assert not os.path.exists(os.path.join(str(tmp_path),
                                               "BENCH_dry.json"))

    def test_record_filename(self):
        assert BenchRecord(name="fig01").filename == "BENCH_fig01.json"
