"""repro.tuning driving ClusterRuntime scenarios through repro.xp.

Satellite coverage for the tuning package on the cluster path: the
paper's grid-search protocol selecting a learning rate over
:class:`~repro.cluster.runtime.ClusterRuntime` runs, and random-search
samples mapped onto a scenario sweep executed (and cached) by the
:class:`~repro.xp.runner.ParallelRunner`.
"""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, functional as F
from repro.optim import MomentumSGD
from repro.tuning import Workload, grid_search, log_uniform, random_search
from repro.utils.rng import new_rng
from repro.xp import ParallelRunner, ResultCache, ScenarioSpec
from repro.xp import runner as runner_mod


def build_problem(seed):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(64, 4))
    y = (x[:, 0] + 0.5 * x[:, 2] > 0).astype(int)
    model = nn.Sequential(nn.Linear(4, 8, seed=seed), nn.ReLU(),
                          nn.Linear(8, 2, seed=seed + 1))

    def loss_fn():
        return F.cross_entropy(model(Tensor(x)), y)

    return model, loss_fn


WORKLOAD = Workload(name="toy", build=build_problem, steps=30,
                    smooth_window=5)


def lr_spec(lr, reads=40):
    """One cluster scenario per candidate learning rate."""
    return ScenarioSpec(
        name=f"tune/lr={lr:.6g}", workload="toy_classifier",
        workload_params={"samples": 64, "features": 4, "hidden": 8,
                         "batch_size": 16},
        optimizer="momentum_sgd",
        optimizer_params={"lr": float(lr), "momentum": 0.9},
        workers=4, num_shards=2, reads=reads, seed=0, smooth=10)


class TestGridSearchOnClusterPath:
    def test_grid_search_async_workers_end_to_end(self):
        # async_workers routes run_workload through the ClusterRuntime
        # facade: the paper's tuning protocol on the cluster runtime
        result = grid_search(
            WORKLOAD,
            lambda params, lr: MomentumSGD(params, lr=lr, momentum=0.9),
            lr_grid=(1e-3, 0.05, 10.0), optimizer_name="msgd",
            seeds=(0,), async_workers=4)
        assert result.best_lr == 0.05
        assert result.best_run.losses.size == WORKLOAD.steps
        # the absurd lr must not win even if it survived
        assert result.all_runs[10.0].min_loss >= result.best_smoothed_min

    def test_grid_search_via_xp_runner_picks_stable_lr(self, tmp_path):
        grid = (1e-3, 0.05, 10.0)
        specs = [lr_spec(lr) for lr in grid]
        runner = ParallelRunner(processes=2,
                                cache=ResultCache(tmp_path / "cache"))
        results = runner.run(specs)
        scores = {lr: r.metrics["final_loss"] +
                  (1e18 if r.metrics["diverged"] else 0.0)
                  for lr, r in zip(grid, results)}
        assert min(scores, key=scores.get) == 0.05

    def test_rerun_of_tuning_sweep_hits_cache(self, tmp_path, monkeypatch):
        grid = (1e-3, 0.05)
        cache = ResultCache(tmp_path / "cache")
        first = ParallelRunner(processes=1, cache=cache)
        before = first.run([lr_spec(lr) for lr in grid])

        monkeypatch.setattr(
            runner_mod, "run_scenario",
            lambda spec: (_ for _ in ()).throw(
                AssertionError(f"recomputed {spec.name}")))
        second = ParallelRunner(processes=1, cache=cache)
        after = second.run([lr_spec(lr) for lr in grid])
        assert (second.hits, second.misses) == (len(grid), 0)
        assert [r.identity() for r in before] == \
            [r.identity() for r in after]


class TestRandomSearchOnClusterPath:
    def test_random_search_end_to_end(self):
        result = random_search(
            WORKLOAD,
            lambda params, cfg: MomentumSGD(params, lr=cfg["lr"],
                                            momentum=0.9),
            sampler=lambda rng: {"lr": log_uniform(rng, 1e-3, 1e-1)},
            budget=4, optimizer_name="msgd", seeds=(0,), seed=7)
        assert result.best_run.losses.size == WORKLOAD.steps
        assert np.isfinite(result.best_run.min_loss)

    def test_sampled_sweep_is_deterministic_through_runner(self):
        # deterministic sampling -> deterministic specs -> deterministic
        # records, independent of pool size
        lrs_a = [log_uniform(new_rng(11), 1e-3, 1e-1),
                 log_uniform(new_rng(12), 1e-3, 1e-1)]
        lrs_b = [log_uniform(new_rng(11), 1e-3, 1e-1),
                 log_uniform(new_rng(12), 1e-3, 1e-1)]
        assert lrs_a == lrs_b
        specs_a = [lr_spec(lr, reads=30) for lr in lrs_a]
        specs_b = [lr_spec(lr, reads=30) for lr in lrs_b]
        assert [s.content_hash() for s in specs_a] == \
            [s.content_hash() for s in specs_b]
        res_serial = ParallelRunner(processes=1).run(specs_a)
        res_pool = ParallelRunner(processes=2).run(specs_b)
        assert [r.identity() for r in res_serial] == \
            [r.identity() for r in res_pool]

    def test_distinct_scenarios_get_distinct_derived_seeds(self):
        a = ScenarioSpec(name="tune/a", reads=20)
        b = ScenarioSpec(name="tune/b", reads=20)
        assert a.resolved_seed() != b.resolved_seed()
        ra, rb = runner_mod.run_scenario(a), runner_mod.run_scenario(b)
        assert ra.env["seed"] != rb.env["seed"]


@pytest.mark.parametrize("workers,shards", [(1, 1), (4, 2)])
def test_topology_sweep_trains_everywhere(workers, shards):
    spec = ScenarioSpec(
        name=f"topo/{workers}x{shards}", workload="toy_classifier",
        workload_params={"samples": 64, "features": 4, "hidden": 8,
                         "batch_size": 16},
        optimizer="momentum_sgd",
        optimizer_params={"lr": 0.05, "momentum": 0.9},
        workers=workers, num_shards=shards, reads=40, seed=0, smooth=10)
    result = runner_mod.run_scenario(spec)
    assert result.metrics["diverged"] == 0.0
    assert result.metrics["final_loss"] < result.metrics["initial_loss"]
