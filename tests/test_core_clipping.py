"""Adaptive gradient clipping behaviour (Section 3.3 / Appendix F)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import YellowFin
from repro.core.clipping import AdaptiveClipper


def param_with_grad(grad):
    p = Tensor(np.zeros_like(np.asarray(grad, dtype=float)),
               requires_grad=True)
    p.grad = np.asarray(grad, dtype=float)
    return p


class TestAdaptiveClipper:
    def test_passthrough_without_hmax(self):
        clipper = AdaptiveClipper()
        p = param_with_grad([30.0, 40.0])
        norm = clipper.clip([p], hmax=None)
        assert norm == pytest.approx(50.0)
        np.testing.assert_allclose(p.grad, [30.0, 40.0])

    def test_clips_above_sqrt_hmax(self):
        clipper = AdaptiveClipper(warmup_steps=1)
        p = param_with_grad([1.0])
        clipper.clip([p], hmax=4.0)  # warmup step
        p = param_with_grad([30.0, 40.0])
        clipper.clip([p], hmax=4.0)  # threshold = 2
        assert np.linalg.norm(p.grad) == pytest.approx(2.0)
        assert clipper.clip_events == 1

    def test_no_clip_below_threshold(self):
        clipper = AdaptiveClipper(warmup_steps=1)
        clipper.clip([param_with_grad([1.0])], hmax=100.0)
        p = param_with_grad([3.0])
        clipper.clip([p], hmax=100.0)  # threshold = 10
        np.testing.assert_allclose(p.grad, [3.0])
        assert clipper.clip_events == 0

    def test_warmup_validation(self):
        with pytest.raises(ValueError):
            AdaptiveClipper(warmup_steps=0)


class TestYellowFinIntegration:
    def test_spike_is_clipped(self):
        """A single 1000x gradient spike must be rescaled to the recent
        envelope, so the model moves a bounded amount (Fig. 6 mechanism)."""
        p = Tensor(np.array([0.0]), requires_grad=True)
        opt = YellowFin([p], adaptive_clip=True, slow_start=False)
        for _ in range(30):
            p.grad = np.array([1.0])
            opt.step()
        x_before = p.data.copy()
        p.grad = np.array([1000.0])
        opt.step()
        moved_clipped = abs(p.data[0] - x_before[0])

        p2 = Tensor(np.array([0.0]), requires_grad=True)
        opt2 = YellowFin([p2], adaptive_clip=False, slow_start=False)
        for _ in range(30):
            p2.grad = np.array([1.0])
            opt2.step()
        x2_before = p2.data.copy()
        p2.grad = np.array([1000.0])
        opt2.step()
        moved_unclipped = abs(p2.data[0] - x2_before[0])

        assert moved_clipped < moved_unclipped / 10

    def test_envelope_growth_limited_in_tuner(self):
        """With adaptive_clip=True the tuner's hmax uses eq. (35)."""
        p = Tensor(np.array([0.0]), requires_grad=True)
        opt = YellowFin([p], adaptive_clip=True)
        assert opt.measurements.curvature.limit_envelope_growth

    def test_clipping_neutral_on_stable_run(self):
        """Fig. 7: on a well-behaved objective, clipping on/off should end
        at nearly the same place."""
        def train(adaptive):
            rng = np.random.default_rng(0)
            p = Tensor(np.array([5.0, -5.0]), requires_grad=True)
            opt = YellowFin([p], adaptive_clip=adaptive)
            for _ in range(200):
                p.grad = p.data + 0.01 * rng.normal(size=2)
                opt.step()
            return np.abs(p.data).max()

        assert train(True) == pytest.approx(train(False), abs=1e-2)
