"""Checkpoint/restore: a resumed cluster run is bit-for-bit identical.

The acceptance property of the cluster subsystem: crash the driver at
update k, restore from the checkpoint written there, continue — the
trajectory (losses and final parameters) must equal the uninterrupted
run exactly, for fused and unfused optimizers, under a non-constant
delay model, with faults active, through a disk JSON round trip.
"""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, functional as F
from repro.cluster import (ClusterRuntime, EventQueue, FaultInjector,
                           ParetoDelay, UniformDelay, WorkerCrash,
                           checkpoint_cluster, load_cluster_checkpoint,
                           restore_cluster, save_cluster_checkpoint)
from repro.core import ClosedLoopYellowFin
from repro.data import BatchLoader
from repro.optim import Adam, MomentumSGD
from repro.utils import (decode_state, encode_state, get_rng_state,
                         load_checkpoint, new_rng, restore_rng,
                         save_checkpoint, set_rng_state)


class LoaderWorkload:
    """Checkpointable loss closure: model + seeded minibatch stream."""

    def __init__(self, model, loader):
        self.model = model
        self.loader = loader

    def __call__(self):
        xb, yb = self.loader.next_batch()
        return F.cross_entropy(self.model(Tensor(xb)), yb)

    def state_dict(self):
        return self.loader.state_dict()

    def load_state_dict(self, state):
        self.loader.load_state_dict(state)


def flat(model):
    return np.concatenate([p.data.reshape(-1) for p in model.parameters()])


def build_runtime(optimizer_factory, delay_seed=3, with_faults=True):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(64, 4))
    y = (x[:, 0] > 0).astype(int)
    model = nn.Sequential(nn.Linear(4, 8, seed=0), nn.ReLU(),
                          nn.Linear(8, 2, seed=1))
    workload = LoaderWorkload(model, BatchLoader(x, y, batch_size=16,
                                                 seed=5))
    opt = optimizer_factory(model.parameters())
    faults = None
    if with_faults:
        faults = FaultInjector(
            crash_prob=0.02,
            scheduled=[WorkerCrash(worker=1, time=3.0, downtime=2.0)],
            seed=7)
    runtime = ClusterRuntime(
        model, opt, workload, workers=4,
        delay_model=ParetoDelay(alpha=1.5, scale=0.5, seed=delay_seed),
        num_shards=2, faults=faults, seed=11)
    return model, runtime, workload


OPTIMIZERS = {
    "momentum_unfused": lambda p: MomentumSGD(p, lr=0.05, momentum=0.8),
    "adam_fused": lambda p: Adam(p, lr=0.05, fused=True),
    "clyf_fused": lambda p: ClosedLoopYellowFin(p, staleness=3, window=5,
                                                beta=0.9, fused=True),
    "clyf_unfused": lambda p: ClosedLoopYellowFin(p, staleness=3, window=5,
                                                  beta=0.9),
}


@pytest.mark.parametrize("name", list(OPTIMIZERS))
def test_crash_and_restore_is_bitwise_identical(name, tmp_path):
    """The ISSUE acceptance criterion, through an on-disk checkpoint."""
    factory = OPTIMIZERS[name]

    model_ref, rt_ref, _ = build_runtime(factory)
    rt_ref.run(reads=120)

    # phase 1: run to "step k", checkpoint to disk, then drop everything
    # (the simulated driver crash)
    _, rt_a, workload_a = build_runtime(factory)
    rt_a.run(reads=50)
    path = tmp_path / "ckpt.json"
    save_cluster_checkpoint(rt_a, path, workload=workload_a)
    del rt_a, workload_a

    # phase 2: fresh processes rebuild the same configuration and restore
    model_b, rt_b, workload_b = build_runtime(factory)
    restore_cluster(rt_b, load_cluster_checkpoint(path),
                    workload=workload_b)
    rt_b.run(reads=120)

    assert rt_ref.log.scalars["loss"] == rt_b.log.scalars["loss"]
    assert rt_ref.log.scalars.get("staleness") == \
        rt_b.log.scalars.get("staleness")
    np.testing.assert_array_equal(flat(model_ref), flat(model_b))


def test_restore_checks_format_and_worker_count(tmp_path):
    _, rt, workload = build_runtime(OPTIMIZERS["momentum_unfused"])
    rt.run(reads=10)
    state = checkpoint_cluster(rt, workload=workload)
    with pytest.raises(ValueError):
        restore_cluster(rt, {**state, "format_version": 99})

    rng = np.random.default_rng(0)
    x = rng.normal(size=(64, 4))
    y = (x[:, 0] > 0).astype(int)
    model = nn.Sequential(nn.Linear(4, 8, seed=0), nn.ReLU(),
                          nn.Linear(8, 2, seed=1))
    opt = MomentumSGD(model.parameters(), lr=0.05, momentum=0.8)
    wrong = ClusterRuntime(model, opt, lambda: None, workers=2)
    with pytest.raises(ValueError):
        restore_cluster(wrong, state)


def test_checkpoint_includes_workload_stream_position():
    _, rt, workload = build_runtime(OPTIMIZERS["momentum_unfused"],
                                    with_faults=False)
    rt.run(reads=20)
    state = checkpoint_cluster(rt, workload=workload)
    assert "workload" in state
    # advancing the live stream then restoring rewinds it
    before = workload.loader.next_batch()[0].copy()
    restore_cluster(rt, state, workload=workload)
    after = workload.loader.next_batch()[0]
    np.testing.assert_array_equal(before, after)


class TestEventQueueState:
    def test_round_trip_preserves_order_and_payloads(self):
        q = EventQueue()
        q.schedule(2.0, "arrival", 1, {"grads": [np.ones(3), None],
                                       "read_step": 4})
        q.schedule(1.0, "restart", 0, {})
        q.schedule(1.0, "crash", 2, {"restart_at": 5.0, "lost_read": 7})
        state = decode_state(encode_state(q.state_dict()))

        q2 = EventQueue()
        q2.load_state_dict(state)
        assert len(q2) == 3
        first = q2.pop()
        assert (first.time, first.kind, first.worker) == (1.0, "restart", 0)
        second = q2.pop()
        assert second.kind == "crash"
        third = q2.pop()
        np.testing.assert_array_equal(third.payload["grads"][0], np.ones(3))
        assert third.payload["grads"][1] is None
        assert third.payload["read_step"] == 4
        # the seq counter travels too: new events keep sorting after old
        assert q2._next_seq == 3


class TestSerializationCodec:
    def test_ndarray_round_trip_preserves_dtype_shape_values(self,
                                                             tmp_path):
        state = {
            "f64": np.random.default_rng(0).normal(size=(3, 2)),
            "f32": np.arange(4, dtype=np.float32).reshape(2, 2),
            "i64": np.array([1, -2, 3]),
            "nested": {"t": (1, 2.5, None), "l": [np.zeros(2), "s"]},
            "empty": np.zeros((0, 3)),
        }
        path = tmp_path / "state.json"
        save_checkpoint(state, path)
        loaded = load_checkpoint(path)
        for key in ("f64", "f32", "i64", "empty"):
            assert loaded[key].dtype == state[key].dtype
            assert loaded[key].shape == state[key].shape
            np.testing.assert_array_equal(loaded[key], state[key])
        assert loaded["nested"]["t"] == (1, 2.5, None)
        np.testing.assert_array_equal(loaded["nested"]["l"][0], np.zeros(2))

    def test_floats_survive_exactly(self):
        values = [0.1, 1e-300, math_pi := 3.141592653589793, -0.0]
        out = decode_state(encode_state({"v": values}))
        assert out["v"] == values
        assert math_pi == out["v"][2]


class TestRngState:
    def test_generator_state_round_trip(self):
        rng = new_rng(42)
        rng.random(10)
        state = decode_state(encode_state(get_rng_state(rng)))
        clone = restore_rng(state)
        np.testing.assert_array_equal(rng.random(10), clone.random(10))

    def test_set_rng_state_rewinds(self):
        rng = new_rng(1)
        state = get_rng_state(rng)
        first = rng.random(5)
        set_rng_state(rng, state)
        np.testing.assert_array_equal(first, rng.random(5))

    def test_non_pcg64_state_survives_codec(self):
        """MT19937/SFC64 states carry ndarrays; the tag schema must
        round-trip them through the checkpoint codec."""
        for bit_gen in (np.random.MT19937(3), np.random.SFC64(3)):
            rng = np.random.Generator(bit_gen)
            rng.random(5)
            state = decode_state(encode_state(get_rng_state(rng)))
            clone = restore_rng(state)
            np.testing.assert_array_equal(rng.random(5), clone.random(5))

    def test_bit_generator_mismatch_rejected(self):
        rng = new_rng(0)
        state = get_rng_state(rng)
        state["bit_generator"] = "SFC64"
        with pytest.raises(ValueError):
            set_rng_state(new_rng(0), state)

    def test_mixin_state_round_trip(self):
        from repro.utils import RngMixin

        class Thing(RngMixin):
            def __init__(self, seed=None):
                self._init_rng(seed)

        thing = Thing(9)
        thing.rng.random(3)
        state = thing.rng_state()
        expected = thing.rng.random(4)

        fresh = Thing()
        fresh.__dict__.pop("_rng", None)  # never constructed (lazy path)
        fresh.set_rng_state(state)
        np.testing.assert_array_equal(fresh.rng.random(4), expected)


class TestBatchLoaderState:
    def test_stream_position_round_trip(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(20, 2))
        y = np.arange(20)
        a = BatchLoader(x, y, batch_size=8, seed=3)
        a.next_batch()
        state = decode_state(encode_state(a.state_dict()))
        expected = [a.next_batch()[1].tolist() for _ in range(6)]

        b = BatchLoader(x, y, batch_size=8, seed=999)  # different seed
        b.load_state_dict(state)
        got = [b.next_batch()[1].tolist() for _ in range(6)]
        assert expected == got


def test_two_phase_equals_one_phase_without_serialization():
    """run(k) ; state_dict ; fresh runtime ; load ; run(total) — the
    in-memory path, isolating runtime state from codec concerns."""
    factory = OPTIMIZERS["adam_fused"]
    model_ref, rt_ref, _ = build_runtime(
        factory, delay_seed=8, with_faults=False)
    rt_ref.run(reads=80)

    _, rt_a, wl_a = build_runtime(factory, delay_seed=8, with_faults=False)
    rt_a.run(reads=37)
    state = checkpoint_cluster(rt_a, workload=wl_a)

    model_b, rt_b, wl_b = build_runtime(factory, delay_seed=8,
                                        with_faults=False)
    restore_cluster(rt_b, state, workload=wl_b)
    rt_b.run(reads=80)
    assert rt_ref.log.scalars["loss"] == rt_b.log.scalars["loss"]
    np.testing.assert_array_equal(flat(model_ref), flat(model_b))


def test_depth_gated_checkpoint_round_trips_pending_queues(tmp_path):
    """In gated mode shard queues are non-empty at the checkpoint; the
    queue entries (steps + gradient slices) must round-trip exactly."""
    def build():
        rng = np.random.default_rng(2)
        x = rng.normal(size=(48, 3))
        y = (x[:, 2] > 0).astype(int)
        model = nn.Sequential(nn.Linear(3, 6, seed=5), nn.ReLU(),
                              nn.Linear(6, 2, seed=6))
        workload = LoaderWorkload(model, BatchLoader(x, y, batch_size=12,
                                                     seed=7))
        opt = MomentumSGD(model.parameters(), lr=0.05, momentum=0.8)
        runtime = ClusterRuntime(model, opt, workload, workers=1,
                                 num_shards=2, queue_staleness=4,
                                 delivery="random", seed=13)
        return model, runtime, workload

    model_ref, rt_ref, _ = build()
    rt_ref.run(reads=60, updates=56)

    _, rt_a, wl_a = build()
    rt_a.run(reads=25, updates=21)
    assert rt_a.server.pending == 4  # the gate holds 4 queued entries
    path = tmp_path / "gated.json"
    save_cluster_checkpoint(rt_a, path, workload=wl_a)

    model_b, rt_b, wl_b = build()
    restore_cluster(rt_b, load_cluster_checkpoint(path), workload=wl_b)
    assert rt_b.server.pending == 4
    rt_b.run(reads=60, updates=56)
    assert rt_ref.log.scalars["loss"] == rt_b.log.scalars["loss"]
    np.testing.assert_array_equal(flat(model_ref), flat(model_b))


def test_restore_rejects_mismatched_delay_model():
    """Restoring a stochastic delay state into a different model class
    must fail loudly, not silently drop the RNG position."""
    from repro.cluster import ConstantDelay, ParetoDelay, UniformDelay

    state = ParetoDelay(seed=0).state_dict()
    with pytest.raises(ValueError):
        UniformDelay(seed=0).load_state_dict(state)
    with pytest.raises(ValueError):
        ConstantDelay().load_state_dict(state)


def test_diverged_run_checkpoint_is_strict_json(tmp_path):
    """A diverged run logs nan/inf losses; the checkpoint must still be
    RFC-compliant JSON (no bare NaN tokens) and round-trip them."""
    import json

    from repro.optim import SGD

    rng = np.random.default_rng(0)
    x = rng.normal(size=(32, 3))
    y = (x[:, 0] > 0).astype(int)
    model = nn.Sequential(nn.Linear(3, 6, seed=0), nn.ReLU(),
                          nn.Linear(6, 2, seed=1))
    loss_fn = lambda: F.cross_entropy(model(Tensor(x)), y)  # noqa: E731
    runtime = ClusterRuntime(model, SGD(model.parameters(), lr=1e9),
                             loss_fn, workers=4)
    runtime.run(reads=100)
    assert runtime.diverged
    path = tmp_path / "diverged.json"
    save_cluster_checkpoint(runtime, path)
    # strict parse: bare NaN/Infinity tokens would raise here
    json.loads(path.read_text(), parse_constant=lambda s: (_ for _ in ())
               .throw(ValueError(f"non-standard token {s}")))
    restored = load_cluster_checkpoint(path)
    losses = restored["runtime"]["log"]["scalars"]["loss"]
    assert losses == runtime.log.scalars["loss"]  # inf/nan values kept


def test_codec_rejects_unroundtrippable_dicts():
    """Non-string keys would be silently coerced by JSON; a user key
    equal to a tag would misdecode — both must fail fast."""
    from repro.utils import encode_state

    with pytest.raises(TypeError):
        encode_state({"hist": {0: 3, 1: 4}})
    with pytest.raises(ValueError):
        encode_state({"__ndarray__": [1, 2]})  # malformed tag node
    with pytest.raises(ValueError):
        encode_state({"nested": {"__tuple__": [], "extra": 1}})
    # well-formed tag nodes pass through: encoding is idempotent
    tree = encode_state({"x": np.arange(3), "t": (1, 2)})
    assert encode_state(tree) == tree


def test_codec_tags_nonfinite_floats():
    from repro.utils import decode_state, encode_state

    state = {"scalar_nan": float("nan"), "scalar_inf": float("inf"),
             "arr": np.array([1.0, np.nan, -np.inf, np.inf])}
    import json
    encoded = json.loads(json.dumps(encode_state(state), allow_nan=False))
    out = decode_state(encoded)
    assert np.isnan(out["scalar_nan"])
    assert out["scalar_inf"] == float("inf")
    np.testing.assert_array_equal(np.isnan(out["arr"]),
                                  [False, True, False, False])
    assert out["arr"][0] == 1.0
    assert out["arr"][2] == -np.inf and out["arr"][3] == np.inf


def test_uniform_delay_resume_bitwise(tmp_path):
    """A second non-constant delay family exercises the RNG-state path."""
    def factory(params):
        return MomentumSGD(params, lr=0.05, momentum=0.8)

    def build(seed=6):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(48, 3))
        y = (x[:, 1] > 0).astype(int)
        model = nn.Sequential(nn.Linear(3, 6, seed=2), nn.ReLU(),
                              nn.Linear(6, 2, seed=3))
        workload = LoaderWorkload(model, BatchLoader(x, y, batch_size=12,
                                                     seed=4))
        runtime = ClusterRuntime(
            model, factory(model.parameters()), workload, workers=3,
            delay_model=UniformDelay(0.5, 2.0, seed=seed))
        return model, runtime, workload

    model_ref, rt_ref, _ = build()
    rt_ref.run(reads=60)

    _, rt_a, wl_a = build()
    rt_a.run(reads=25)
    path = tmp_path / "u.json"
    save_cluster_checkpoint(rt_a, path, workload=wl_a)

    model_b, rt_b, wl_b = build()
    restore_cluster(rt_b, load_cluster_checkpoint(path), workload=wl_b)
    rt_b.run(reads=60)
    assert rt_ref.log.scalars["loss"] == rt_b.log.scalars["loss"]
    np.testing.assert_array_equal(flat(model_ref), flat(model_b))
