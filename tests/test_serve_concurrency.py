"""Concurrency gate: many clients, one daemon, serial-grade answers.

Drives a running daemon from many concurrent client threads — each a
separate tenant on its own sockets — with overlapping spec sets, and
checks the two service invariants under contention:

- every record handed back is bit-identical in deterministic identity
  to a serial local :func:`repro.run.run` of the same spec;
- duplicated specs are computed exactly once, whether the duplicate
  arrived while its twin was pending/running (in-flight dedup) or
  after it finished (result cache) — and the dedup half holds even
  with the cache disabled.
"""

import threading

import pytest

from repro.run import run
from repro.serve import Client, ServeConfig, ServeDaemon
from repro.xp.spec import ScenarioSpec


def make_spec(seed=0, name="conc", **overrides):
    base = dict(name=name, workload="quadratic_bowl",
                workload_params={"dim": 8, "noise_horizon": 8},
                optimizer="momentum_sgd",
                optimizer_params={"lr": 0.02, "momentum": 0.5},
                delay={"kind": "constant", "delay": 1.0},
                workers=2, reads=20, seed=seed, smooth=4)
    base.update(overrides)
    return ScenarioSpec(**base)


def drive(address, jobs, errors):
    """Worker body: submit-and-await each (tenant, spec), recording
    ``(tenant, spec, record)`` triples or the raised exception."""
    results = []

    def one(tenant, spec):
        try:
            client = Client(address, tenant=tenant)
            record = client.result(client.submit(spec), timeout=180)
            results.append((tenant, spec, record))
        except Exception as exc:     # noqa: BLE001 - surfaced below
            errors.append((tenant, spec.name, exc))

    threads = [threading.Thread(target=one, args=job) for job in jobs]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    return results


def test_overlapping_clients_match_serial_run(tmp_path):
    # 8 client threads over 4 distinct specs: every spec is requested
    # twice, concurrently, by different tenants
    distinct = [make_spec(seed=s, name=f"conc/{s}") for s in range(4)]
    serial = {spec.name: run(spec).results[0].identity()
              for spec in distinct}

    daemon = ServeDaemon(ServeConfig(
        cache_dir=str(tmp_path / "cache"), min_workers=1,
        max_workers=4)).start()
    try:
        jobs = [(f"tenant-{i}", distinct[i % len(distinct)])
                for i in range(8)]
        errors = []
        results = drive(daemon.address, jobs, errors)
        assert not errors, errors
        assert len(results) == 8
        for _, spec, record in results:
            assert record.identity() == serial[spec.name]
        counters = daemon.metrics.snapshot()["counters"]
        # 4 distinct specs -> exactly 4 computations; the 4 duplicates
        # were answered by the in-flight index or the cache
        assert counters["serve.jobs_computed"] == 4
        deduped = counters.get("serve.deduplicated", 0)
        cache_hits = counters.get("serve.cache_hits", 0)
        assert deduped + cache_hits == 4
    finally:
        daemon.stop()


def test_inflight_dedup_alone_computes_once(tmp_path):
    # cache disabled: only the in-flight index can absorb duplicates,
    # so hold dispatch until every duplicate has been submitted
    daemon = ServeDaemon(ServeConfig(
        cache_dir=None, min_workers=1, max_workers=2)).start()
    try:
        spec = make_spec(seed=11, name="conc/dup")
        daemon.pause()
        tickets, lock = [], threading.Lock()

        def submit(tenant):
            ticket = Client(daemon.address, tenant=tenant).submit(spec)
            with lock:
                tickets.append((tenant, ticket))

        threads = [threading.Thread(target=submit, args=(f"t{i}",))
                   for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len(tickets) == 6
        job_ids = {ticket.job_id for _, ticket in tickets}
        assert len(job_ids) == 1
        assert sum(t.deduplicated for _, t in tickets) == 5
        daemon.resume()

        identities = set()
        for tenant, ticket in tickets:
            record = Client(daemon.address, tenant=tenant).result(
                ticket, timeout=120)
            identities.add(repr(record.identity()))
        assert len(identities) == 1
        counters = daemon.metrics.snapshot()["counters"]
        assert counters["serve.jobs_computed"] == 1
        assert counters["serve.deduplicated"] == 5
        assert "serve.cache_hits" not in counters
    finally:
        daemon.stop()


def test_quota_pressure_never_corrupts_results(tmp_path):
    # a tight per-tenant quota under concurrent fire: some submissions
    # bounce with 429s, but everything admitted completes correctly
    daemon = ServeDaemon(ServeConfig(
        cache_dir=str(tmp_path / "cache"), min_workers=1, max_workers=2,
        admission_params={"max_pending": 4,
                          "max_inflight_per_tenant": 2})).start()
    try:
        specs = [make_spec(seed=s, name=f"conc/q{s}") for s in range(10)]
        jobs = [(f"tenant-{i % 2}", spec)
                for i, spec in enumerate(specs)]
        errors = []
        results = drive(daemon.address, jobs, errors)
        # rejected submissions raise AdmissionRejected in their thread;
        # everything else must be a correct record
        assert len(results) + len(errors) == 10
        assert results, "quota must not starve the service entirely"
        from repro.serve import AdmissionRejected
        assert all(isinstance(e[2], AdmissionRejected) for e in errors), \
            errors
        for _, spec, record in results:
            assert record.identity() == run(spec).results[0].identity()
    finally:
        daemon.stop()


def test_daemon_survives_a_worker_unit_error(tmp_path):
    # one tenant's bad workload params must fail only that tenant's
    # job; concurrent well-formed traffic is unaffected
    daemon = ServeDaemon(ServeConfig(
        cache_dir=None, min_workers=1, max_workers=2,
        validate=False)).start()
    try:
        from repro.serve import JobFailed
        good = make_spec(seed=1, name="conc/good")
        bad = make_spec(seed=2, name="conc/bad",
                        workload_params={"dim": -4})
        good_client = Client(daemon.address, tenant="good")
        bad_client = Client(daemon.address, tenant="bad")
        tg = good_client.submit(good)
        tb = bad_client.submit(bad)
        with pytest.raises(JobFailed):
            bad_client.result(tb, timeout=120)
        record = good_client.result(tg, timeout=120)
        assert record.identity() == run(good).results[0].identity()
        assert daemon.metrics.snapshot()["counters"][
            "serve.unit_errors"] == 1
    finally:
        daemon.stop()
