"""The top-level ``python -m repro`` CLI: run / list / diff / bench."""

import json

import pytest

from repro.cli import main
from repro.registry import registry
from repro.run import BackendCapabilities, ExecutionBackend, \
    register_backend
from repro.xp import Matrix, ScenarioSpec, save_scenarios


@pytest.fixture()
def matrix_file(tmp_path):
    base = ScenarioSpec(name="cli", workload="quadratic_bowl",
                        workload_params={"dim": 12, "noise_horizon": 16},
                        optimizer="momentum_sgd",
                        optimizer_params={"lr": 0.02, "momentum": 0.5},
                        delay={"kind": "constant", "delay": 1.0},
                        workers=2, reads=12, seed=0, smooth=4)
    matrix = Matrix(base, axes={
        "lr": {"slow": {"optimizer_params.lr": 0.01},
               "fast": {"optimizer_params.lr": 0.04}}})
    path = tmp_path / "matrix.json"
    save_scenarios(matrix, path)
    return path


class TestRun:
    def test_run_reports_backend_and_caches(self, matrix_file, tmp_path,
                                            capsys):
        cache = tmp_path / "cache"
        code = main(["run", str(matrix_file), "--cache", str(cache)])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 scenarios: 0 cached, 2 computed" in out
        assert "backend:" in out

        assert main(["run", str(matrix_file), "--cache",
                     str(cache)]) == 0
        assert "2 cached, 0 computed" in capsys.readouterr().out

    def test_run_with_pinned_backend_writes_payload(self, matrix_file,
                                                    tmp_path, capsys):
        out_file = tmp_path / "results.json"
        code = main(["run", str(matrix_file), "--backend", "serial",
                     "--no-cache", "--out", str(out_file)])
        assert code == 0
        assert "backend: serial (explicitly requested)" in \
            capsys.readouterr().out
        payload = json.loads(out_file.read_text())
        assert payload["backend"] == "serial"
        assert len(payload["results"]) == 2

    def test_unknown_backend_is_a_usage_error(self, matrix_file, capsys):
        code = main(["run", str(matrix_file), "--backend", "quantum",
                     "--no-cache"])
        assert code == 2
        assert "choose from" in capsys.readouterr().err


class TestBench:
    def test_bench_check_passes_across_backends(self, matrix_file,
                                                tmp_path, capsys):
        out_file = tmp_path / "bench.json"
        code = main(["bench", str(matrix_file),
                     "--backends", "serial,cluster,parallel,vec,mp",
                     "--check", "--out", str(out_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "bit-identical" in out and "yes" in out
        payload = json.loads(out_file.read_text())
        assert payload["identical"] is True
        assert set(payload["backends"]) == {"serial", "cluster",
                                            "parallel", "vec", "mp"}

    def test_bench_check_fails_on_divergent_backend(self, matrix_file,
                                                    capsys):
        class SkewBackend(ExecutionBackend):
            """Test backend that perturbs one metric."""

            name = "skew"

            def capabilities(self):
                """No special capabilities."""
                return BackendCapabilities()

            def execute(self, specs, options):
                """Serial records with a perturbed final loss."""
                from repro.run import execute_spec

                out = []
                for spec in specs:
                    record = execute_spec(spec)
                    record.metrics["final_loss"] += 1.0
                    out.append(record)
                return out

        register_backend("skew", SkewBackend)
        try:
            code = main(["bench", str(matrix_file),
                         "--backends", "serial,skew", "--check"])
        finally:
            registry.unregister("backend", "skew")
        assert code == 1
        captured = capsys.readouterr()
        assert "NO" in captured.out
        assert "MISMATCH" in captured.err


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self, matrix_file):
        import os
        import subprocess
        import sys
        from pathlib import Path

        src = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src}{os.pathsep}" \
            + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list", str(matrix_file)],
            capture_output=True, text=True, env=env)
        assert proc.returncode == 0
        assert "2 scenarios" in proc.stdout
