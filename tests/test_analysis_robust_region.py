"""Robust region geometry, GCN and the noiseless tuning rule (eq. 9)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.operators import momentum_spectral_radius
from repro.analysis.robust_region import (generalized_condition_number,
                                          in_robust_region, optimal_momentum,
                                          robust_lr_range, tune_noiseless)


class TestRobustRegion:
    def test_membership_edges(self):
        mu, h = 0.25, 2.0
        lo, hi = robust_lr_range(h, mu)
        assert in_robust_region(lo, h, mu)
        assert in_robust_region(hi, h, mu)
        assert in_robust_region((lo + hi) / 2, h, mu)
        assert not in_robust_region(lo * 0.5, h, mu)
        assert not in_robust_region(hi * 1.5, h, mu)

    def test_negative_momentum_excluded(self):
        assert not in_robust_region(0.1, 1.0, -0.1)

    def test_range_widens_with_momentum(self):
        widths = []
        for mu in (0.0, 0.3, 0.6, 0.9):
            lo, hi = robust_lr_range(1.0, mu)
            widths.append(hi - lo)
        assert widths == sorted(widths)
        assert widths[0] == 0.0  # mu = 0: a single point lr = 1/h

    def test_curvature_validation(self):
        with pytest.raises(ValueError):
            robust_lr_range(0.0, 0.5)


class TestOptimalMomentum:
    def test_kappa_one(self):
        assert optimal_momentum(1.0) == 0.0

    def test_monotone_in_kappa(self):
        values = [optimal_momentum(k) for k in (1.0, 10.0, 100.0, 1000.0)]
        assert values == sorted(values)

    @given(st.floats(1.0, 1e8))
    @settings(max_examples=100, deadline=None)
    def test_in_unit_interval(self, kappa):
        assert 0.0 <= optimal_momentum(kappa) < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_momentum(0.5)


class TestTuneNoiseless:
    @given(st.floats(1e-3, 1e3), st.floats(1.0, 1e5))
    @settings(max_examples=200, deadline=None)
    def test_rule_covers_both_extremes(self, hmin, ratio):
        """Property (eq. 9): (mu, lr) from the rule puts BOTH extremal
        curvatures in the robust region, hence rho = sqrt(mu) for both."""
        hmax = hmin * ratio
        mu, lr = tune_noiseless(hmin, hmax)
        for h in (hmin, hmax):
            assert in_robust_region(lr, h, mu, tol=1e-9)
            rho = momentum_spectral_radius(lr, h, mu)
            assert rho == pytest.approx(np.sqrt(mu), rel=1e-6, abs=1e-9)

    def test_mu_is_minimal(self):
        """Any smaller momentum must leave some curvature outside."""
        hmin, hmax = 1.0, 100.0
        mu, lr = tune_noiseless(hmin, hmax)
        mu_small = mu * 0.9
        lo_needed = (1 - np.sqrt(mu_small)) ** 2 / hmin
        hi_allowed = (1 + np.sqrt(mu_small)) ** 2 / hmax
        assert lo_needed > hi_allowed  # intervals no longer overlap

    def test_validation(self):
        with pytest.raises(ValueError):
            tune_noiseless(2.0, 1.0)
        with pytest.raises(ValueError):
            tune_noiseless(0.0, 1.0)


class TestGCN:
    def test_quadratic_gcn_is_one(self):
        gcn = generalized_condition_number(
            lambda x: np.full_like(x, 3.0), np.linspace(-5, 5, 100))
        assert gcn == pytest.approx(1.0)

    def test_figure3a_objective_gcn(self):
        from repro.data.toy import make_figure3_objective, piecewise_curvature
        obj = make_figure3_objective()
        domain = np.linspace(-20, 20, 2001)
        domain = domain[domain != 0.0]
        gcn = generalized_condition_number(
            lambda xs: piecewise_curvature(obj, xs), domain)
        # curvature spans [~(20+999)/20, 1000] on this domain
        assert gcn > 15.0

    def test_rejects_nonpositive_curvature(self):
        with pytest.raises(ValueError):
            generalized_condition_number(
                lambda x: np.zeros_like(x), np.linspace(1, 2, 5))
