"""Deeper property tests of the momentum-operator theory (Lemmas 7/10)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.operators import spectral_radius, variance_operator
from repro.analysis.quadratic import NoisyQuadratic, exact_expected_sq_dist
from repro.analysis.robust_region import robust_lr_range


def multidim_momentum_operator(lr, eigenvalues, momentum):
    """The 2n x 2n operator of Lemma 7 for a diagonal Hessian."""
    n = len(eigenvalues)
    h = np.diag(eigenvalues)
    eye = np.eye(n)
    top = np.hstack([eye - lr * h + momentum * eye, -momentum * eye])
    bottom = np.hstack([eye, np.zeros((n, n))])
    return np.vstack([top, bottom])


class TestLemma7Multidimensional:
    @given(st.lists(st.floats(0.1, 100.0), min_size=2, max_size=5),
           st.floats(0.05, 0.95))
    @settings(max_examples=100, deadline=None)
    def test_radius_sqrt_mu_when_all_eigenvalues_in_region(self, eigs, mu):
        """Lemma 7: if (1-sqrt(mu))^2 <= lr*lambda <= (1+sqrt(mu))^2 for
        every eigenvalue, the full operator has radius sqrt(mu)."""
        h_min, h_max = min(eigs), max(eigs)
        lo = (1 - np.sqrt(mu)) ** 2 / h_min
        hi = (1 + np.sqrt(mu)) ** 2 / h_max
        if lo > hi:
            return  # mu below the floor for this spectrum: region empty
        lr = 0.5 * (lo + hi)
        op = multidim_momentum_operator(lr, eigs, mu)
        assert spectral_radius(op) == pytest.approx(np.sqrt(mu), rel=1e-5,
                                                    abs=1e-7)

    @given(st.floats(0.05, 0.9))
    @settings(max_examples=50, deadline=None)
    def test_one_eigenvalue_outside_breaks_homogeneity(self, mu):
        """If even one eigenvalue violates the condition, the radius
        exceeds sqrt(mu)."""
        eigs = [1.0, 1.0]
        lr = (1 + np.sqrt(mu)) ** 2  # boundary for lambda = 1
        eigs_bad = [1.0, 3.0]        # lambda = 3 is far outside
        op = multidim_momentum_operator(lr, eigs_bad, mu)
        assert spectral_radius(op) > np.sqrt(mu) + 1e-9


class TestVarianceFixedPoint:
    @given(st.floats(0.05, 0.8), st.floats(0.2, 2.0), st.floats(0.01, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_stationary_variance_matches_linear_solve(self, mu, h, c):
        """The t -> inf limit of the Lemma-5 recursion equals the solution
        of the linear fixed-point system (I - B) u = [lr^2 C, 0, 0]."""
        lo, hi = robust_lr_range(h, mu)
        lr = 0.5 * (lo + hi)
        b_op = variance_operator(lr, h, mu)
        rhs = np.array([lr * lr * c, 0.0, 0.0])
        fixed_point = np.linalg.solve(np.eye(3) - b_op, rhs)

        obj = NoisyQuadratic(curvature=h, noise_var=c)
        curve = exact_expected_sq_dist(obj, x0=0.0, lr=lr, momentum=mu,
                                       steps=4000)
        assert curve[-1] == pytest.approx(fixed_point[0], rel=1e-4)

    def test_variance_grows_with_lr(self):
        """Stationary variance lr^2 C / ... increases with learning rate —
        the trade-off SingleStep balances against momentum."""
        h, c, mu = 1.0, 0.5, 0.25
        lo, hi = robust_lr_range(h, mu)
        obj = NoisyQuadratic(curvature=h, noise_var=c)
        small = exact_expected_sq_dist(obj, 0.0, lo * 1.01, mu, 3000)[-1]
        large = exact_expected_sq_dist(obj, 0.0, hi * 0.99, mu, 3000)[-1]
        assert large > small


class TestRobustRegionGeometry:
    @given(st.floats(0.01, 0.99), st.floats(0.01, 100.0))
    @settings(max_examples=100, deadline=None)
    def test_region_edges_are_complex_eigenvalue_boundary(self, mu, h):
        """Inside the region the two eigenvalues of A are a conjugate pair
        (|disc| <= 0); outside they are real and split."""
        lo, hi = robust_lr_range(h, mu)
        for lr, inside in (((lo + hi) / 2, True), (hi * 1.5, False)):
            m = 1 - lr * h + mu
            disc = m * m - 4 * mu
            assert (disc <= 1e-12) == inside
