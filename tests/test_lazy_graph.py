"""Unit tests for the lazy-graph machinery itself.

Where :mod:`tests.test_lazy_differential` pins down *values*, this
file pins down *mechanics*: CSE merging, dead-node pruning, fusion
grouping, buffer-pool recycling, the scatter fast path, and the
device registry.
"""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd import functional as F
from repro.lazy import (BufferPool, LazyRuntime, NumpyDevice,
                        RealizeStats, lazy_mode, schedule)
from repro.lazy.devices import _k_scatter_add
from repro.registry import registry


class TestCSE:
    def test_identical_subexpressions_merge(self):
        rt = LazyRuntime()
        with lazy_mode(runtime=rt):
            a = Tensor(np.full((4, 4), 2.0))
            b = Tensor(np.full((4, 4), 3.0))
            left = (a * b).tanh()
            right = (a * b).tanh()
            out = left + right
            np.testing.assert_array_equal(
                out.data, 2 * np.tanh(np.full((4, 4), 6.0)))
        assert rt.stats.cse_hits >= 2  # the mul and the tanh both merge

    def test_distinct_attrs_do_not_merge(self):
        rt = LazyRuntime()
        with lazy_mode(runtime=rt):
            a = Tensor(np.arange(8.0).reshape(2, 4))
            out = a.sum(axis=0) @ np.ones(4) + (a.sum(axis=1) @ np.ones(2))
            float(out.data)
        assert rt.stats.cse_hits == 0

    def test_merged_duplicate_shares_buffer(self):
        rt = LazyRuntime()
        with lazy_mode(runtime=rt):
            a = Tensor(np.full((3, 3), 1.5))
            two = Tensor(np.full((3, 3), 2.0))
            u = a * two
            v = a * two
            (u + v).realize()  # realized in one plan, so CSE merges them
            assert u._node.buffer is v._node.buffer
            assert rt.stats.cse_hits == 1
            np.testing.assert_array_equal(v.data, np.full((3, 3), 3.0))


class TestPruning:
    def test_unrealized_branches_never_execute(self):
        rt = LazyRuntime()
        with lazy_mode(runtime=rt):
            a = Tensor(np.ones((4, 4)))
            live = (a * 2.0).tanh()
            for _ in range(10):
                _dead = (a + float(np.pi)).sigmoid().exp()  # never read
            live.realize()
        # recorded far more than executed: dead branches were pruned
        assert rt.stats.nodes_recorded > rt.stats.nodes_executed

    def test_schedule_skips_already_realized(self):
        rt = LazyRuntime()
        with lazy_mode(runtime=rt):
            a = Tensor(np.ones((2, 2)))
            b = (a * 3.0)
            b.realize()
            executed_before = rt.stats.nodes_executed
            c = b + 1.0
            c.realize()
            # only the add ran; the realized mul was reused as input
            assert rt.stats.nodes_executed == executed_before + 1


class TestFusion:
    def test_elementwise_chain_counts_one_launch(self):
        rt = LazyRuntime()
        with lazy_mode(runtime=rt):
            a = Tensor(np.ones((8, 8)))
            out = ((a * 2.0).tanh() + 1.0).sigmoid()
            out.realize()
        assert rt.stats.fused_nodes >= 2
        assert rt.stats.kernel_launches < rt.stats.nodes_executed

    def test_multi_consumer_node_not_fused(self):
        rt = LazyRuntime()
        with lazy_mode(runtime=rt):
            a = Tensor(np.ones((4, 4)))
            shared = a * 2.0          # two consumers: cannot fuse away
            out = shared.tanh() + shared.sigmoid()
            out.realize()
            plan_roots = [out._node]
        plan = schedule(plan_roots)  # re-plan: everything has buffers
        assert plan.topo == []       # nothing pending

    def test_schedule_reports_launch_arithmetic(self):
        with lazy_mode():
            a = Tensor(np.ones((4, 4)))
            out = (a * 2.0).tanh()
            plan = schedule([out._node])
        assert plan.launches == len(plan.topo) - len(plan.fused_into)
        assert plan.launches >= 1


class TestBufferPool:
    def test_take_put_roundtrip(self):
        pool = BufferPool()
        assert pool.take((3, 3)) is None
        buf = np.empty((3, 3))
        pool.put(buf)
        assert len(pool) == 1
        got = pool.take((3, 3))
        assert got is buf
        assert len(pool) == 0

    def test_dtype_and_shape_keyed(self):
        pool = BufferPool()
        pool.put(np.empty((2, 2), dtype=np.float64))
        assert pool.take((2, 2), dtype=np.float32) is None
        assert pool.take((2, 3)) is None
        assert pool.take((2, 2)) is not None

    def test_per_key_budget(self):
        pool = BufferPool(max_per_key=2, max_total=100)
        for _ in range(5):
            pool.put(np.empty((4,)))
        assert len(pool) == 2

    def test_total_budget(self):
        pool = BufferPool(max_per_key=10, max_total=3)
        for i in range(6):
            pool.put(np.empty((i + 1,)))
        assert len(pool) == 3

    def test_scalar_results_ignored(self):
        pool = BufferPool()
        pool.put(np.float64(3.0))  # reductions yield NumPy scalars
        assert len(pool) == 0

    def test_clear(self):
        pool = BufferPool()
        pool.put(np.empty((2,)))
        pool.clear()
        assert len(pool) == 0
        assert pool.take((2,)) is None

    def test_training_loop_reaches_steady_state(self):
        # same graph realized repeatedly on one runtime: allocations
        # stop growing once the pool holds the working set
        rt = LazyRuntime()
        x = np.random.default_rng(0).normal(size=(64, 64))

        def step():
            with lazy_mode(runtime=rt):
                t = Tensor(x.copy(), requires_grad=True)
                ((t * 2.0).tanh() + 1.0).sum().backward()

        step()
        cold_allocs = rt.stats.alloc_new
        for _ in range(4):
            step()
        warm_allocs = rt.stats.alloc_new - cold_allocs
        assert rt.stats.pool_hits > 0
        # per-step allocations must not grow once the pool is warm
        # (some stay constant: retained grad buffers are never pooled)
        assert warm_allocs / 4 <= cold_allocs


class TestScatterFastPath:
    def test_slice_index_uses_fast_path(self):
        before = _k_scatter_add.fast_hits
        g = np.ones((2, 4))
        out = _k_scatter_add((np.s_[1:3], (5, 4)), [g], None)
        assert _k_scatter_add.fast_hits == before + 1
        expected = np.zeros((5, 4))
        np.add.at(expected, np.s_[1:3], g)
        np.testing.assert_array_equal(out, expected)

    def test_strictly_increasing_rows_use_fast_path(self):
        before = _k_scatter_add.fast_hits
        idx = (np.arange(3), np.array([2, 0, 1]))
        out = _k_scatter_add((idx, (3, 4)), [np.ones(3)], None)
        assert _k_scatter_add.fast_hits == before + 1
        expected = np.zeros((3, 4))
        np.add.at(expected, idx, np.ones(3))
        np.testing.assert_array_equal(out, expected)

    def test_repeated_indices_fall_back_to_add_at(self):
        before = _k_scatter_add.fast_hits
        idx = np.array([0, 0, 2])
        out = _k_scatter_add((idx, (3,)), [np.ones(3)], None)
        assert _k_scatter_add.fast_hits == before  # not taken
        np.testing.assert_array_equal(out, np.array([2.0, 0.0, 1.0]))

    def test_out_buffer_zeroed_before_accumulate(self):
        dirty = np.full((4,), 7.0)
        out = _k_scatter_add((np.s_[0:2], (4,)), [np.ones(2)], dirty)
        np.testing.assert_array_equal(out, np.array([1.0, 1.0, 0.0, 0.0]))


class TestDeviceRegistry:
    def test_numpy_device_registered(self):
        dev = registry.build("device", "numpy")
        assert isinstance(dev, NumpyDevice)
        assert "matmul" in dev.kinds()

    def test_numba_stub_raises_clear_error(self):
        with pytest.raises(RuntimeError, match="numba"):
            registry.build("device", "numba")

    def test_unknown_kind_raises(self):
        dev = NumpyDevice()
        with pytest.raises(KeyError, match="no kernel"):
            dev.run("definitely_not_an_op", (), [])

    def test_runtime_accepts_device_instance(self):
        rt = LazyRuntime(device=NumpyDevice())
        with lazy_mode(runtime=rt):
            t = Tensor(np.ones((2, 2)))
            np.testing.assert_array_equal((t + 1.0).data, np.full((2, 2), 2.0))


class TestRealizeStats:
    def test_as_dict_round_trip(self):
        stats = RealizeStats()
        stats.realizations = 2
        stats.alloc_new = 5
        stats.extra["scatter_fast_hits"] = 3
        d = stats.as_dict()
        assert d["realizations"] == 2
        assert d["alloc_new"] == 5
        assert d["scatter_fast_hits"] == 3
        assert set(d) >= {"realizations", "nodes_recorded",
                          "nodes_executed", "kernel_launches",
                          "fused_nodes", "cse_hits", "alloc_new",
                          "pool_hits"}

    def test_stats_accumulate_across_realizations(self):
        rt = LazyRuntime()
        with lazy_mode(runtime=rt):
            a = Tensor(np.ones((4, 4)))
            (a * 2.0).realize()
            (a + 1.0).realize()
        assert rt.stats.realizations == 2
