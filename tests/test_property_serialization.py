"""Property-based round-trip tests for the state codec and BatchedFlatParams.

Seeded random generation (no external property-testing dependency)
drives many-shaped inputs through the invariants:

- ``encode_state``/``decode_state`` round-trip arbitrary nested state
  trees — random shapes, dtypes, non-finite floats, tuples, None — bit
  for bit, through a strict (``allow_nan=False``) JSON wire.
- ``BatchedFlatParams.snapshot``/``restore`` round-trip replicate
  parameter matrices exactly, preserve tensor aliasing, and handle
  zero-size parameters.
- ``ShardedParameterServer.state_dict`` survives the codec for random
  shard counts and queue contents.
"""

import json

import numpy as np
import pytest

from repro.autograd.flat import BatchedFlatParams
from repro.autograd.tensor import Tensor
from repro.utils.serialization import decode_state, encode_state

TRIALS = 25


def random_array(rng):
    dtype = rng.choice(["float64", "float32", "int64", "int32", "bool"])
    ndim = int(rng.integers(0, 4))
    shape = tuple(int(rng.integers(0, 5)) for _ in range(ndim))
    if dtype == "bool":
        return rng.integers(0, 2, size=shape).astype(bool)
    if dtype.startswith("int"):
        return rng.integers(-1000, 1000, size=shape).astype(dtype)
    arr = rng.normal(size=shape).astype(dtype)
    if dtype == "float64" and arr.size and rng.random() < 0.3:
        flat = arr.reshape(-1)
        flat[int(rng.integers(flat.size))] = rng.choice(
            [np.nan, np.inf, -np.inf])
    return arr


def random_leaf(rng):
    kind = rng.choice(["array", "float", "nonfinite", "int", "str",
                       "bool", "none"])
    if kind == "array":
        return random_array(rng)
    if kind == "float":
        return float(rng.normal() * 10 ** int(rng.integers(-8, 9)))
    if kind == "nonfinite":
        return float(rng.choice([np.nan, np.inf, -np.inf]))
    if kind == "int":
        return int(rng.integers(-2 ** 62, 2 ** 62))
    if kind == "str":
        return "".join(rng.choice(list("abc é☃"))
                       for _ in range(int(rng.integers(0, 8))))
    if kind == "bool":
        return bool(rng.integers(0, 2))
    return None


def random_tree(rng, depth=0):
    if depth >= 3 or rng.random() < 0.4:
        return random_leaf(rng)
    kind = rng.choice(["dict", "list", "tuple"])
    n = int(rng.integers(0, 4))
    if kind == "dict":
        return {f"k{i}_{int(rng.integers(100))}": random_tree(rng,
                                                              depth + 1)
                for i in range(n)}
    children = [random_tree(rng, depth + 1) for _ in range(n)]
    return tuple(children) if kind == "tuple" else children


def assert_tree_equal(a, b, path="$"):
    __tracebackhide__ = True
    assert type(a) is type(b), (path, type(a), type(b))
    if isinstance(a, dict):
        assert set(a) == set(b), path
        for k in a:
            assert_tree_equal(a[k], b[k], f"{path}.{k}")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), path
        for i, (x, y) in enumerate(zip(a, b)):
            assert_tree_equal(x, y, f"{path}[{i}]")
    elif isinstance(a, np.ndarray):
        assert a.dtype == b.dtype, path
        assert a.shape == b.shape, path
        if a.dtype.kind == "f":
            assert np.array_equal(a, b, equal_nan=True), path
        else:
            assert np.array_equal(a, b), path
    elif isinstance(a, float) and a != a:
        assert b != b, path
    else:
        assert a == b, path


class TestCodecRoundTrip:
    @pytest.mark.parametrize("trial", range(TRIALS))
    def test_random_state_trees_round_trip(self, trial):
        rng = np.random.default_rng(1000 + trial)
        tree = {"root": random_tree(rng), "extra": random_tree(rng)}
        wire = json.dumps(encode_state(tree), allow_nan=False)
        assert_tree_equal(decode_state(json.loads(wire)), tree)

    @pytest.mark.parametrize("trial", range(10))
    def test_encoding_idempotent(self, trial):
        rng = np.random.default_rng(2000 + trial)
        tree = {"root": random_tree(rng)}
        once = encode_state(tree)
        assert_tree_equal(decode_state(encode_state(once)),
                          decode_state(once))

    def test_zero_size_arrays_keep_dtype_and_shape(self):
        for shape in ((0,), (3, 0), (0, 4, 2)):
            arr = np.empty(shape, dtype=np.float32)
            out = decode_state(json.loads(json.dumps(encode_state(arr))))
            assert out.shape == shape and out.dtype == np.float32


def random_param_shapes(rng, allow_zero=True):
    n = int(rng.integers(1, 6))
    shapes = []
    for _ in range(n):
        ndim = int(rng.integers(0, 3))
        low = 0 if allow_zero else 1
        shapes.append(tuple(int(rng.integers(low, 5))
                            for _ in range(ndim)))
    return shapes


def make_param_lists(rng, shapes, replicates):
    return [[Tensor(rng.normal(size=shape), requires_grad=True)
             for shape in shapes] for _ in range(replicates)]


class TestBatchedFlatParamsProperties:
    @pytest.mark.parametrize("trial", range(TRIALS))
    def test_snapshot_restore_round_trip(self, trial):
        rng = np.random.default_rng(3000 + trial)
        shapes = random_param_shapes(rng)
        replicates = int(rng.integers(1, 5))
        param_lists = make_param_lists(rng, shapes, replicates)
        originals = [[p.data.copy() for p in ps] for ps in param_lists]
        flat = BatchedFlatParams(param_lists)
        # packing preserves values and installs row views
        for ps, vals in zip(param_lists, originals):
            for p, v in zip(ps, vals):
                assert np.array_equal(p.data, v)
        before = flat.snapshot()
        flat.buffer += rng.normal(size=flat.buffer.shape)
        flat.restore(before)
        assert np.array_equal(flat.buffer, before)
        for ps, vals in zip(param_lists, originals):
            for p, v in zip(ps, vals):
                # restore writes through the shared buffer: aliased
                # tensors see the restored values without rebinding
                assert np.array_equal(p.data, v)

    @pytest.mark.parametrize("trial", range(10))
    def test_row_snapshot_restore_is_per_replicate(self, trial):
        rng = np.random.default_rng(4000 + trial)
        shapes = random_param_shapes(rng)
        flat = BatchedFlatParams(make_param_lists(rng, shapes, 3))
        saved = flat.snapshot_row(1)
        others = [flat.snapshot_row(0), flat.snapshot_row(2)]
        flat.buffer[1] += 1.0
        flat.restore_row(1, saved)
        assert np.array_equal(flat.row(1), saved)
        assert np.array_equal(flat.row(0), others[0])
        assert np.array_equal(flat.row(2), others[1])

    def test_zero_size_parameters_pack_and_round_trip(self):
        rng = np.random.default_rng(5)
        shapes = [(2,), (0,), (3, 0), (2, 2)]
        param_lists = make_param_lists(rng, shapes, 2)
        flat = BatchedFlatParams(param_lists)
        assert flat.size == 2 + 0 + 0 + 4
        snap = flat.snapshot()
        flat.buffer[:] = 0.0
        flat.restore(snap)
        assert np.array_equal(flat.snapshot(), snap)
        assert param_lists[0][1].data.shape == (0,)
        assert param_lists[1][2].data.shape == (3, 0)

    def test_gather_grads_zero_fills_missing(self):
        rng = np.random.default_rng(6)
        param_lists = make_param_lists(rng, [(2,), (2, 2)], 2)
        flat = BatchedFlatParams(param_lists)
        g = rng.normal(size=(2, 2))
        param_lists[0][1].grad = g
        out = flat.gather_grads()
        assert np.array_equal(out[0, 2:], g.reshape(-1))
        assert np.array_equal(out[0, :2], np.zeros(2))
        assert np.array_equal(out[1], np.zeros(6))

    def test_repack_after_rebind_keeps_values(self):
        rng = np.random.default_rng(7)
        param_lists = make_param_lists(rng, [(3,)], 2)
        flat = BatchedFlatParams(param_lists)
        fresh = rng.normal(size=3)
        param_lists[1][0].data = fresh.copy()  # rebinding breaks aliasing
        assert not flat.packed
        flat.ensure_packed()
        assert np.array_equal(flat.row(1), fresh)
        assert param_lists[1][0].data.base is flat.buffer

    def test_shape_mismatch_rejected(self):
        rng = np.random.default_rng(8)
        a = [Tensor(rng.normal(size=(2,)), requires_grad=True)]
        b = [Tensor(rng.normal(size=(3,)), requires_grad=True)]
        with pytest.raises(ValueError, match="shapes differ"):
            BatchedFlatParams([a, b])

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            BatchedFlatParams([])
        with pytest.raises(ValueError):
            BatchedFlatParams([[]])


class TestShardedServerStateProperty:
    @pytest.mark.parametrize("trial", range(8))
    def test_server_state_survives_codec_any_shard_count(self, trial):
        from repro import nn
        from repro.optim import MomentumSGD
        from repro.sim.parameter_server import ShardedParameterServer

        rng = np.random.default_rng(6000 + trial)
        hidden = int(rng.integers(2, 7))
        model = nn.Sequential(nn.Linear(3, hidden, seed=trial), nn.ReLU(),
                              nn.Linear(hidden, 2, seed=trial + 1))
        optimizer = MomentumSGD(model.parameters(), lr=0.05)
        num_shards = int(rng.integers(1, 8))
        server = ShardedParameterServer(model, optimizer,
                                        num_shards=num_shards,
                                        staleness=int(rng.integers(0, 3)),
                                        seed=trial)
        for step in range(int(rng.integers(1, 5))):
            grads = [rng.normal(size=p.data.shape)
                     for p in optimizer.params]
            server.push(grads, step=step)
        state = server.state_dict()
        wire = json.dumps(encode_state(state), allow_nan=False)
        restored_state = decode_state(json.loads(wire))

        clone_model = nn.Sequential(nn.Linear(3, hidden, seed=trial),
                                    nn.ReLU(),
                                    nn.Linear(hidden, 2, seed=trial + 1))
        clone_opt = MomentumSGD(clone_model.parameters(), lr=0.05)
        clone = ShardedParameterServer(clone_model, clone_opt,
                                       num_shards=num_shards,
                                       staleness=server.shards[0]
                                       .staleness, seed=trial)
        clone.load_state_dict(restored_state)
        assert clone.steps_pushed == server.steps_pushed
        assert clone.pending == server.pending
        for shard, shard_clone in zip(server.shards, clone.shards):
            assert len(shard.queue) == len(shard_clone.queue)
            for (s1, g1), (s2, g2) in zip(shard.queue,
                                          shard_clone.queue):
                assert s1 == s2
                for a, b in zip(g1, g2):
                    assert np.array_equal(a, b)
