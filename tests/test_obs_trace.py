"""End-to-end trace export: a faulty cluster run, viewable in Perfetto.

The ISSUE-level acceptance check: a cluster scenario with scheduled
faults, run under a tracer, must export a Chrome ``trace_event`` JSON
that (a) passes the structural validator, (b) carries spans from at
least three subsystems (event loop, optimizer kernel, delay model),
and (c) marks the fault firings as instant events.  Plus a smoke of
the ``python -m repro trace`` CLI that produces the same artifact.
"""

import json

from repro.cli import main as cli_main
from repro.obs import ObsSession, Tracer, validate_chrome_trace
from repro.run import run
from repro.xp import ScenarioSpec


def faulty_spec(**overrides):
    base = dict(name="xtrace", workload="quadratic_bowl",
                workload_params={"dim": 24, "noise_horizon": 32},
                optimizer="momentum_sgd",
                optimizer_params={"lr": 0.02, "momentum": 0.5},
                delay={"kind": "uniform", "low": 0.5, "high": 1.5,
                       "seed": 5},
                workers=3, reads=30, seed=11, smooth=5,
                faults={"seed": 9, "scheduled": [
                    {"kind": "crash", "worker": 1, "time": 4.0,
                     "downtime": 3.0}]})
    base.update(overrides)
    return ScenarioSpec(**base)


class TestClusterTraceExport:
    def export(self, tmp_path):
        session = ObsSession(tracer=Tracer())
        run(faulty_spec(), backend="cluster", obs=session)
        path = tmp_path / "trace.json"
        session.tracer.to_chrome_trace(path)
        return session.tracer, validate_chrome_trace(path)

    def test_trace_spans_at_least_three_subsystems(self, tmp_path):
        tracer, payload = self.export(tmp_path)
        span_cats = {e["cat"] for e in payload["traceEvents"]
                     if e["ph"] == "X"}
        assert {"cluster.events", "cluster.delay",
                "optimizer"} <= span_cats
        assert "run.backend" in span_cats

    def test_fault_firings_are_instant_events(self, tmp_path):
        tracer, payload = self.export(tmp_path)
        instants = [e for e in payload["traceEvents"] if e["ph"] == "i"]
        names = {e["name"] for e in instants}
        assert "fault:crash" in names
        assert "fault:restart" in names
        for event in instants:
            assert event["cat"] == "cluster.faults"
            assert event["s"] == "t"

    def test_event_loop_spans_carry_sim_time(self, tmp_path):
        tracer, payload = self.export(tmp_path)
        dispatches = [e for e in payload["traceEvents"]
                      if e["ph"] == "X" and e["cat"] == "cluster.events"]
        assert dispatches
        for event in dispatches:
            assert "sim_time" in event["args"]
            assert event["name"].startswith("event:")


class TestTraceCli:
    def test_trace_subcommand_end_to_end(self, tmp_path, capsys):
        spec_file = tmp_path / "scenarios.json"
        spec_file.write_text(json.dumps(
            {"scenarios": [faulty_spec().as_dict()]}))
        out = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        code = cli_main(["trace", str(spec_file), "--backend", "cluster",
                         "--out", str(out), "--jsonl", str(jsonl),
                         "--top", "5"])
        assert code == 0
        payload = validate_chrome_trace(out)
        cats = {e.get("cat") for e in payload["traceEvents"]}
        assert {"cluster.events", "cluster.delay", "optimizer"} <= cats
        assert jsonl.exists()
        captured = capsys.readouterr().out
        assert "hot spots:" in captured
        assert "cluster.commits" in captured
