"""Fault fuzz on the real multi-process runtime: actual kills, same bits.

The multi-process twin of ``tests/test_cluster_fault_fuzz.py``: seeded
random fault schedules drive :class:`repro.mp.MPClusterRuntime`, where
a crash SIGKILLs a real worker PID and a restart forks a replacement
that must resynchronize its loss stream by absolute position.
Invariants under fuzz:

- the run always terminates with budgets respected and exact read
  accounting (committed + in-flight + crash-lost reads add up);
- the trajectory stays bit-identical to the pure simulator's on the
  same spec — real kills included;
- a mid-run checkpoint restores into a *fresh* runtime (fresh worker
  processes at stream position zero) and continues bit-for-bit to the
  uninterrupted run's final state.

Real processes make each trial pricier than the simulated fuzz, so the
trial count is smaller; the schedules still mix scheduled and
probabilistic crash/straggler/pause faults.
"""

import numpy as np
import pytest

from repro.cluster.checkpoint import checkpoint_cluster, restore_cluster
from repro.mp import build_mp_runtime, mp_available
from repro.run import run
from repro.xp import ScenarioSpec

pytestmark = pytest.mark.skipif(
    not mp_available(), reason="no fork/shared-memory support")

TRIALS = 4


def random_faults(rng, workers):
    """A random fault spec mixing scripted events and rates."""
    scheduled = []
    for _ in range(int(rng.integers(0, 3))):
        kind = str(rng.choice(["crash", "straggler", "pause"]))
        t = float(rng.uniform(0.0, 15.0))
        if kind == "crash":
            scheduled.append({"kind": "crash",
                              "worker": int(rng.integers(workers)),
                              "time": t,
                              "downtime": float(rng.uniform(0.5, 5.0))})
        elif kind == "straggler":
            scheduled.append({"kind": "straggler",
                              "worker": int(rng.integers(workers)),
                              "start": t,
                              "duration": float(rng.uniform(0.5, 6.0)),
                              "factor": float(rng.uniform(2.0, 8.0))})
        else:
            scheduled.append({"kind": "pause", "start": t,
                              "duration": float(rng.uniform(0.5, 4.0)),
                              "shard": int(rng.integers(2))})
    return {
        "crash_prob": float(rng.choice([0.0, 0.04, 0.1])),
        "crash_downtime": float(rng.uniform(0.5, 3.0)),
        "straggler_prob": float(rng.choice([0.0, 0.08])),
        "straggler_factor": float(rng.uniform(2.0, 6.0)),
        "pause_prob": float(rng.choice([0.0, 0.03])),
        "pause_duration": float(rng.uniform(0.5, 2.0)),
        "scheduled": scheduled,
        "seed": int(rng.integers(2 ** 31)),
    }


def fuzz_spec(trial, rng):
    workers = int(rng.integers(2, 4))
    delay = str(rng.choice(["constant", "uniform", "pareto"]))
    if delay == "uniform":
        delay_spec = {"kind": "uniform", "low": 0.5, "high": 1.5,
                      "seed": trial}
    elif delay == "pareto":
        delay_spec = {"kind": "pareto", "alpha": 1.5, "scale": 0.5,
                      "seed": trial}
    else:
        delay_spec = {"kind": "constant", "delay": 1.0}
    return ScenarioSpec(
        name=f"mp_fuzz_{trial}", workload="toy_classifier",
        workload_params={"samples": 48, "features": 4, "hidden": 6,
                         "batch_size": 12},
        optimizer="momentum_sgd",
        optimizer_params={"lr": 0.05, "momentum": 0.9,
                          "fused": bool(rng.integers(0, 2))},
        delay=delay_spec, workers=workers,
        num_shards=int(rng.integers(1, 4)),
        queue_staleness=int(rng.integers(0, 3)),
        delivery=str(rng.choice(["fifo", "random"])),
        faults=random_faults(rng, workers),
        reads=int(rng.integers(18, 32)), seed=trial, smooth=5)


def flat_params(runtime):
    return np.concatenate([p.data.reshape(-1)
                           for p in runtime.optimizer.params])


@pytest.mark.parametrize("trial", range(TRIALS))
def test_fuzzed_real_faults_terminate_with_exact_accounting(trial):
    rng = np.random.default_rng(4200 + trial)
    spec = fuzz_spec(trial, rng)
    reads = spec.reads
    with build_mp_runtime(spec) as runtime:
        log = runtime.run(reads=reads)

        # budgets respected, and the loop genuinely ended
        assert runtime.reads_done <= reads
        assert log.series("loss").size == runtime.reads_done
        # exact read accounting, with real processes behind it: every
        # read either committed, is in flight, or died with its worker
        stats = runtime.worker_stats()
        assert sum(w["reads"] for w in stats) == runtime.reads_done
        crashes_fired = sum(w["crashes"] for w in stats)
        crashes_queued = runtime.events.count_kind("crash")
        assert runtime.reads_done == runtime.updates_done \
            + runtime.in_flight + crashes_fired + crashes_queued
        # every worker that is up again has a live OS process; every
        # worker currently down has none
        pids = runtime.pool.pids()
        for worker, pid in zip(runtime.workers, pids):
            if worker.alive:
                assert pid is not None
            else:
                assert pid is None

    # the realized trajectory equals the simulator's, bit for bit
    assert run(spec, backend="mp").result.identity() == \
        run(spec, backend="serial").result.identity()


@pytest.mark.parametrize("trial", range(TRIALS))
def test_fuzzed_mid_run_checkpoint_restores_bit_for_bit(trial):
    rng = np.random.default_rng(8600 + trial)
    spec = fuzz_spec(trial, rng)
    total = spec.reads
    cut = int(rng.integers(5, total - 5))

    with build_mp_runtime(spec) as reference:
        ref_log = reference.run(reads=total)
        ref_params = flat_params(reference)
        ref_counts = (reference.reads_done, reference.updates_done)

    with build_mp_runtime(spec) as first:
        first.run(reads=cut)
        state = checkpoint_cluster(first)

    # fresh runtime, fresh worker processes at loss-stream position
    # zero: position-based resync must carry the restored run to the
    # exact same final state
    with build_mp_runtime(spec) as resumed:
        restore_cluster(resumed, state)
        resumed_log = resumed.run(reads=total)
        assert (resumed.reads_done, resumed.updates_done) == ref_counts
        assert resumed_log.state_dict() == ref_log.state_dict()
        assert np.array_equal(flat_params(resumed), ref_params)
