"""LSTM cell/stack behaviour and gradient checks."""

import numpy as np

from repro import nn
from repro.autograd import Tensor
from repro.autograd.grad_check import check_gradients


def x(shape, seed=0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestLSTMCell:
    def test_step_shapes(self):
        cell = nn.LSTMCell(4, 6, seed=0)
        h, c = cell(x((3, 4)), cell.zero_state(3))
        assert h.shape == (3, 6) and c.shape == (3, 6)

    def test_forget_bias_initialized(self):
        cell = nn.LSTMCell(4, 6, seed=0)
        np.testing.assert_allclose(cell.bias.data[6:12], 1.0)

    def test_gradcheck_input(self):
        cell = nn.LSTMCell(3, 4, seed=0)
        state = cell.zero_state(2)
        check_gradients(lambda a: cell(a, state)[0], [x((2, 3))], atol=1e-4)

    def test_gradcheck_weights(self):
        cell = nn.LSTMCell(2, 3, seed=0)
        inp = x((2, 2)).detach()
        state = cell.zero_state(2)
        check_gradients(lambda w: cell(inp, state)[0], [cell.weight_hh],
                        atol=1e-4)

    def test_state_flows(self):
        cell = nn.LSTMCell(2, 3, seed=0)
        state = cell.zero_state(1)
        inp = x((1, 2))
        h1, c1 = cell(inp, state)
        h2, c2 = cell(inp, (h1, c1))
        assert not np.allclose(h1.data, h2.data)


class TestLSTM:
    def test_sequence_shapes(self):
        lstm = nn.LSTM(3, 5, num_layers=2, seed=0)
        out, state = lstm(x((7, 2, 3)))
        assert out.shape == (7, 2, 5)
        assert len(state) == 2
        assert state[0][0].shape == (2, 5)

    def test_backward_through_time(self):
        lstm = nn.LSTM(2, 3, seed=0)
        inp = x((4, 1, 2))
        out, _ = lstm(inp)
        out.sum().backward()
        assert inp.grad is not None
        assert lstm.cells[0].weight_hh.grad is not None

    def test_gradcheck_short_sequence(self):
        lstm = nn.LSTM(2, 2, seed=0)
        check_gradients(lambda a: lstm(a)[0], [x((3, 1, 2))], atol=1e-4)

    def test_detach_state_cuts_graph(self):
        lstm = nn.LSTM(2, 3, seed=0)
        _, state = lstm(x((2, 1, 2)))
        detached = nn.LSTM.detach_state(state)
        assert all(not h.requires_grad and not c.requires_grad
                   for h, c in detached)

    def test_state_carrying_changes_output(self):
        lstm = nn.LSTM(2, 3, seed=0)
        inp = x((2, 1, 2))
        out1, state = lstm(inp)
        out2a, _ = lstm(inp, nn.LSTM.detach_state(state))
        out2b, _ = lstm(inp)  # fresh zero state
        assert not np.allclose(out2a.data, out2b.data)
