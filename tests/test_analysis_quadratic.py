"""Lemma 5: exact MSE recursion vs. Monte-Carlo momentum SGD, and the
asymptotic surrogate (eqs. 13/14)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.quadratic import (NoisyQuadratic, exact_expected_sq_dist,
                                      one_step_surrogate, run_momentum_gd,
                                      surrogate_expected_sq_dist)
from repro.utils.rng import spawn_rngs


class TestDeterministicDynamics:
    def test_noiseless_exact_matches_trajectory(self):
        """With C = 0 the exact recursion must reproduce the deterministic
        momentum-GD trajectory squared, step for step."""
        obj = NoisyQuadratic(curvature=1.7, noise_var=0.0)
        lr, mu, x0, steps = 0.4, 0.3, 2.0, 40
        xs = run_momentum_gd(obj, x0, lr, mu, steps)
        expected = exact_expected_sq_dist(obj, x0, lr, mu, steps)
        np.testing.assert_allclose(xs ** 2, expected, atol=1e-12)

    def test_convergence_rate_is_sqrt_mu_in_robust_region(self):
        """In the robust region, |x_t| decays at sqrt(mu) asymptotically."""
        mu, h = 0.5, 2.0
        lr = (1 - np.sqrt(mu)) ** 2 / h * 1.3  # safely inside the region
        obj = NoisyQuadratic(curvature=h)
        xs = np.abs(run_momentum_gd(obj, 1.0, lr, mu, 120))
        # measure decay over the tail
        rate = (xs[100] / xs[60]) ** (1 / 40)
        assert rate == pytest.approx(np.sqrt(mu), abs=0.03)


class TestLemma5MonteCarlo:
    @pytest.mark.parametrize("lr,mu", [(0.2, 0.0), (0.15, 0.5), (0.4, 0.3)])
    def test_exact_matches_monte_carlo(self, lr, mu):
        """The closed-form E(x_t - x*)^2 must match averaged noisy runs."""
        obj = NoisyQuadratic(curvature=1.0, noise_var=0.5)
        x0, steps, n_runs = 1.5, 30, 4000
        rngs = spawn_rngs(123, n_runs)
        acc = np.zeros(steps + 1)
        for rng in rngs:
            acc += run_momentum_gd(obj, x0, lr, mu, steps, rng=rng) ** 2
        mc = acc / n_runs
        exact = exact_expected_sq_dist(obj, x0, lr, mu, steps)
        np.testing.assert_allclose(mc, exact, rtol=0.12, atol=0.02)

    def test_nonzero_optimum(self):
        obj = NoisyQuadratic(curvature=2.0, noise_var=0.0, optimum=3.0)
        xs = run_momentum_gd(obj, 5.0, 0.3, 0.2, 60)
        assert abs(xs[-1] - 3.0) < 1e-6


class TestSurrogate:
    def test_robust_form_matches_numeric_in_region(self):
        """Inside the robust region eq. (14) equals eq. (13)."""
        mu, h = 0.4, 1.0
        lr = 1.0  # (1-sqrt(mu))^2 <= lr*h = 1 <= (1+sqrt(mu))^2 holds
        obj = NoisyQuadratic(curvature=h, noise_var=0.3)
        numeric = surrogate_expected_sq_dist(obj, 1.0, lr, mu, 50)
        robust = surrogate_expected_sq_dist(obj, 1.0, lr, mu, 50,
                                            robust_form=True)
        np.testing.assert_allclose(numeric, robust, rtol=1e-8)

    def test_surrogate_tracks_exact_asymptote(self):
        """The stationary variance of the surrogate, lr^2 C/(1-mu), must
        match the exact recursion's limit."""
        mu, h, c = 0.3, 1.0, 0.2
        lr = (1 - np.sqrt(mu)) ** 2 / h * 1.5
        obj = NoisyQuadratic(curvature=h, noise_var=c)
        exact = exact_expected_sq_dist(obj, 0.0, lr, mu, 4000)
        surrogate = surrogate_expected_sq_dist(obj, 0.0, lr, mu, 4000)
        # The surrogate is a scalar stand-in for e1^T (I-B)^{-1} e1 and is
        # only meant to capture the fixed-point scale (the paper uses it
        # "to simplify analysis and expose insights"): same magnitude, not
        # equality.
        ratio = exact[-1] / surrogate[-1]
        assert 0.2 < ratio < 5.0

    def test_divergent_variance_flagged(self):
        """Outside stability (rho(B) >= 1) the surrogate variance is inf."""
        obj = NoisyQuadratic(curvature=1.0, noise_var=1.0)
        out = surrogate_expected_sq_dist(obj, 1.0, lr=5.0, momentum=0.9,
                                         steps=10)
        assert np.isinf(out[-1])

    @given(st.floats(0.0, 0.99), st.floats(0.01, 2.0),
           st.floats(0.0, 10.0), st.floats(0.0, 10.0))
    @settings(max_examples=100, deadline=None)
    def test_one_step_surrogate_formula(self, mu, lr, d2, c):
        assert one_step_surrogate(mu, lr, d2, c) == \
            pytest.approx(mu * d2 + lr * lr * c)


class TestGradientModel:
    def test_noise_variance_calibrated(self):
        obj = NoisyQuadratic(curvature=1.0, noise_var=4.0)
        rng = np.random.default_rng(0)
        grads = [obj.gradient(0.0, rng) for _ in range(20000)]
        assert np.var(grads) == pytest.approx(4.0, rel=0.05)

    def test_no_rng_is_deterministic(self):
        obj = NoisyQuadratic(curvature=2.0, noise_var=4.0)
        assert obj.gradient(1.5) == pytest.approx(3.0)

    def test_loss(self):
        obj = NoisyQuadratic(curvature=2.0)
        assert obj.loss(3.0) == pytest.approx(9.0)
