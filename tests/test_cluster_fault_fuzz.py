"""Fault-injection fuzz: random fault schedules never wedge the runtime.

Seeded random crash/straggler/pause schedules (scripted and
probabilistic) are thrown at small cluster runs.  Invariants under
fuzz:

- the event loop always terminates with its budgets respected — no
  deadlock, no over-run;
- the log and worker counters stay mutually consistent;
- a mid-run checkpoint/restore continues bit-for-bit to the same final
  state as the uninterrupted run (fault RNG positions included).

Each case is a few dozen reads of a tiny model; the whole module is
budgeted well under 10 seconds.
"""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, functional as F
from repro.cluster.checkpoint import checkpoint_cluster, restore_cluster
from repro.cluster.faults import (FaultInjector, ShardPause, Straggler,
                                  WorkerCrash)
from repro.cluster.runtime import ClusterRuntime
from repro.data import BatchLoader
from repro.optim import MomentumSGD

TRIALS = 8


def tiny_workload(seed):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(48, 4))
    y = (x @ rng.normal(size=4) > 0).astype(int)
    model = nn.Sequential(nn.Linear(4, 6, seed=seed), nn.ReLU(),
                          nn.Linear(6, 2, seed=seed + 1))
    loader = BatchLoader(x, y, batch_size=12, seed=seed)

    def loss_fn():
        xb, yb = loader.next_batch()
        return F.cross_entropy(model(Tensor(xb)), yb)

    return model, loss_fn, loader


def random_faults(rng, workers):
    """A random mix of scripted faults and probabilistic rates."""
    scheduled = []
    for _ in range(int(rng.integers(0, 4))):
        kind = rng.choice(["crash", "straggler", "pause"])
        t = float(rng.uniform(0.0, 20.0))
        if kind == "crash":
            scheduled.append(WorkerCrash(
                worker=int(rng.integers(workers)), time=t,
                downtime=float(rng.uniform(0.5, 6.0))))
        elif kind == "straggler":
            scheduled.append(Straggler(
                worker=int(rng.integers(workers)), start=t,
                duration=float(rng.uniform(0.5, 8.0)),
                factor=float(rng.uniform(2.0, 12.0))))
        else:
            scheduled.append(ShardPause(
                start=t, duration=float(rng.uniform(0.5, 5.0)),
                shard=int(rng.integers(2))))
    return FaultInjector(
        crash_prob=float(rng.choice([0.0, 0.02, 0.08])),
        crash_downtime=float(rng.uniform(0.5, 4.0)),
        straggler_prob=float(rng.choice([0.0, 0.05, 0.15])),
        straggler_factor=float(rng.uniform(2.0, 8.0)),
        pause_prob=float(rng.choice([0.0, 0.03])),
        pause_duration=float(rng.uniform(0.5, 3.0)),
        scheduled=scheduled, seed=int(rng.integers(2 ** 31)))


def build_runtime(trial, rng, workers, reads_hint):
    model, loss_fn, loader = tiny_workload(trial)
    optimizer = MomentumSGD(model.parameters(), lr=0.05, momentum=0.9,
                            fused=bool(rng.integers(0, 2)))
    delay = rng.choice(["constant", "uniform", "pareto"])
    if delay == "constant":
        delay_model = "constant"
    elif delay == "uniform":
        from repro.cluster.delays import UniformDelay
        delay_model = UniformDelay(0.5, 1.5, seed=trial)
    else:
        from repro.cluster.delays import ParetoDelay
        delay_model = ParetoDelay(alpha=1.5, scale=0.5, seed=trial)
    runtime = ClusterRuntime(
        model, optimizer, loss_fn, workers=workers,
        delay_model=delay_model,
        num_shards=int(rng.integers(1, 4)),
        queue_staleness=int(rng.integers(0, 3)),
        delivery=str(rng.choice(["fifo", "random"])),
        faults=random_faults(rng, workers), seed=trial)
    return runtime, loader


@pytest.mark.parametrize("trial", range(TRIALS))
def test_fuzzed_faults_never_deadlock_or_overrun(trial):
    rng = np.random.default_rng(9000 + trial)
    workers = int(rng.integers(2, 5))
    reads = int(rng.integers(20, 45))
    runtime, _ = build_runtime(trial, rng, workers, reads)
    log = runtime.run(reads=reads)

    # budgets respected: never over-run, and the loop actually ended
    assert runtime.reads_done <= reads
    losses = log.series("loss")
    assert losses.size == runtime.reads_done
    # counters consistent: per-worker reads sum to the total, commits
    # never exceed reads, crashes and restarts pair up sanely
    stats = runtime.worker_stats()
    assert sum(w["reads"] for w in stats) == runtime.reads_done
    assert runtime.updates_done <= runtime.reads_done
    # exact read accounting: every read either committed, is still in
    # flight, or was lost to a crash (fired, or still queued as a
    # pending crash event at run end)
    crashes_fired = sum(w["crashes"] for w in stats)
    crashes_queued = runtime.events.count_kind("crash")
    assert runtime.reads_done == runtime.updates_done \
        + runtime.in_flight + crashes_fired + crashes_queued
    for w in stats:
        assert 0 <= w["restarts"] <= w["crashes"] <= runtime.reads_done
    # staleness entries come one per commit
    assert log.series("staleness").size == runtime.updates_done


@pytest.mark.parametrize("trial", range(TRIALS))
def test_fuzzed_faults_checkpoint_restore_bit_for_bit(trial):
    rng = np.random.default_rng(500 + trial)
    workers = int(rng.integers(2, 5))
    total = int(rng.integers(24, 40))
    cut = int(rng.integers(6, total - 6))

    rng_a = np.random.default_rng(77 + trial)
    reference, _ = build_runtime(trial, rng_a, workers, total)
    ref_log = reference.run(reads=total)

    rng_b = np.random.default_rng(77 + trial)
    first, loader = build_runtime(trial, rng_b, workers, total)
    first.run(reads=cut)
    state = checkpoint_cluster(first, workload=loader)

    rng_c = np.random.default_rng(77 + trial)
    resumed, loader_c = build_runtime(trial, rng_c, workers, total)
    restore_cluster(resumed, state, workload=loader_c)
    resumed_log = resumed.run(reads=total)

    assert resumed.reads_done == reference.reads_done
    assert resumed.updates_done == reference.updates_done
    assert resumed_log.state_dict() == ref_log.state_dict()
    assert np.array_equal(
        np.concatenate([p.data.reshape(-1)
                        for p in resumed.optimizer.params]),
        np.concatenate([p.data.reshape(-1)
                        for p in reference.optimizer.params]))
