"""Sharded parameter-server runtime: equivalence, batching, edge cases."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, functional as F
from repro.core import ClosedLoopYellowFin
from repro.optim import MomentumSGD, SGD
from repro.sim import (GreedyBalancedSharding, HashSharding,
                       RoundRobinSharding, ShardedParameterServer,
                       make_policy, train_async, train_sync)


def make_problem(seed=3):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(32, 3))
    y = (x[:, 0] > 0).astype(int)
    model = nn.Sequential(nn.Linear(3, 8, seed=0), nn.ReLU(),
                          nn.Linear(8, 2, seed=1))

    def loss_fn():
        return F.cross_entropy(model(Tensor(x)), y)

    return model, loss_fn


def run_async(num_shards, workers=1, steps=40, policy="hash",
              staleness_model="round_robin", optimizer="sgd"):
    model, loss_fn = make_problem()
    if optimizer == "sgd":
        opt = MomentumSGD(model.parameters(), lr=0.1, momentum=0.5)
    else:
        opt = ClosedLoopYellowFin(model.parameters(), staleness=workers - 1,
                                  window=5, beta=0.9)
    log = train_async(model, opt, loss_fn, steps=steps, workers=workers,
                      num_shards=num_shards, shard_policy=policy,
                      staleness_model=staleness_model, seed=11)
    flat = np.concatenate([p.data.reshape(-1) for p in model.parameters()])
    return log, flat


class TestShardEquivalence:
    """The acceptance property: sharding never changes the trajectory."""

    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_tau0_matches_single_shard_bitwise(self, num_shards):
        """N-shard runs at tau=0 (workers=1) reproduce the 1-shard
        trajectory bit-for-bit."""
        log_ref, x_ref = run_async(num_shards=1, workers=1)
        log_n, x_n = run_async(num_shards=num_shards, workers=1)
        np.testing.assert_array_equal(x_ref, x_n)
        np.testing.assert_array_equal(log_ref.series("loss"),
                                      log_n.series("loss"))

    @pytest.mark.parametrize("num_shards", [2, 4])
    @pytest.mark.parametrize("workers", [4, 8])
    def test_stale_runs_also_bitwise_neutral(self, num_shards, workers):
        """Sharding is trajectory-neutral at any staleness, not just 0."""
        _, x_ref = run_async(num_shards=1, workers=workers)
        _, x_n = run_async(num_shards=num_shards, workers=workers)
        np.testing.assert_array_equal(x_ref, x_n)

    @pytest.mark.parametrize("policy", ["hash", "round_robin", "balanced"])
    def test_every_policy_is_trajectory_neutral(self, policy):
        _, x_ref = run_async(num_shards=1, workers=4)
        _, x_n = run_async(num_shards=3, workers=4, policy=policy)
        np.testing.assert_array_equal(x_ref, x_n)

    def test_random_staleness_model_neutral(self):
        _, x_ref = run_async(num_shards=1, workers=4,
                             staleness_model="random")
        _, x_n = run_async(num_shards=4, workers=4,
                           staleness_model="random")
        np.testing.assert_array_equal(x_ref, x_n)

    def test_closed_loop_yellowfin_under_sharding(self):
        """The global tuner sees assembled whole-model gradients, so even
        the closed-loop controller is shard-count independent."""
        _, x_ref = run_async(num_shards=1, workers=4, optimizer="clyf")
        _, x_n = run_async(num_shards=4, workers=4, optimizer="clyf")
        np.testing.assert_array_equal(x_ref, x_n)

    def test_tau0_matches_sync_trainer(self):
        model, loss_fn = make_problem()
        opt = MomentumSGD(model.parameters(), lr=0.1, momentum=0.5)
        log_sync = train_sync(model, opt, loss_fn, steps=30)

        model2, loss_fn2 = make_problem()
        opt2 = MomentumSGD(model2.parameters(), lr=0.1, momentum=0.5)
        server = ShardedParameterServer(model2, opt2, num_shards=4)
        log_ps = server.run(loss_fn2, steps=30)
        np.testing.assert_allclose(log_sync.series("loss"),
                                   log_ps.series("loss"), atol=1e-12)


class TestBatchedPushPull:
    def test_push_routes_slices_to_owning_shards(self):
        model, _ = make_problem()
        opt = SGD(model.parameters(), lr=0.1)
        server = ShardedParameterServer(model, opt, num_shards=2,
                                        staleness=1, policy="round_robin")
        grads = [np.full(p.shape, float(i))
                 for i, p in enumerate(opt.params)]
        server.push(grads)
        for shard in server.shards:
            if shard.empty:
                continue
            step, slices = shard.queue[0]
            assert step == 0
            for i, g in zip(shard.indices, slices):
                np.testing.assert_array_equal(g, grads[i])

    def test_push_many_batches(self):
        model, _ = make_problem()
        opt = SGD(model.parameters(), lr=0.1)
        server = ShardedParameterServer(model, opt, num_shards=2,
                                        staleness=5)
        grads = [np.zeros(p.shape) for p in opt.params]
        server.push_many([(s, grads) for s in range(3)])
        assert server.pending == 3
        assert server.steps_pushed == 3

    def test_pull_returns_versions_and_copies(self):
        model, _ = make_problem()
        opt = SGD(model.parameters(), lr=1.0)
        server = ShardedParameterServer(model, opt, num_shards=2)
        snap = server.pull()
        assert set(snap) == {0, 1}
        total = sum(len(v["params"]) for v in snap.values())
        assert total == len(opt.params)
        # copies: mutating the pull must not touch the live model
        for v in snap.values():
            for i, arr in v["params"].items():
                arr += 1e9
        for v in server.pull().values():
            for i, arr in v["params"].items():
                assert np.all(np.abs(arr) < 1e8)
        assert all(v["version"] == 0 for v in snap.values())

    def test_versions_advance_with_updates(self):
        model, loss_fn = make_problem()
        opt = SGD(model.parameters(), lr=0.1)
        server = ShardedParameterServer(model, opt, num_shards=2)
        server.run(loss_fn, steps=5)
        for v in server.pull().values():
            assert v["version"] == 5

    def test_push_length_validated(self):
        model, _ = make_problem()
        opt = SGD(model.parameters(), lr=0.1)
        server = ShardedParameterServer(model, opt, num_shards=2)
        with pytest.raises(ValueError):
            server.push([None])


class TestEdgeCases:
    def test_more_shards_than_parameters(self):
        """Empty shards must neither crash nor deadlock readiness."""
        model, loss_fn = make_problem()
        opt = MomentumSGD(model.parameters(), lr=0.1, momentum=0.5)
        n_params = len(opt.params)
        server = ShardedParameterServer(model, opt,
                                        num_shards=n_params + 5,
                                        policy="round_robin")
        empty = [s for s in server.shards if s.empty]
        assert len(empty) == 5
        log = server.run(loss_fn, steps=20)
        assert len(log.series("loss")) == 20
        assert server.steps_applied == 20

    def test_final_step_queue_drain(self):
        """At staleness tau, tau gradients are in flight when training
        ends; flush applies them in order."""
        model, loss_fn = make_problem()
        opt = SGD(model.parameters(), lr=0.05)
        server = ShardedParameterServer(model, opt, num_shards=2,
                                        staleness=3)
        server.run(loss_fn, steps=10)
        assert server.pending == 3
        applied = server.flush()
        assert applied == [7, 8, 9]
        assert server.pending == 0
        assert server.steps_applied == 10

    def test_drain_final_flag_in_run(self):
        model, loss_fn = make_problem()
        opt = SGD(model.parameters(), lr=0.05)
        log = train_async(model, opt, loss_fn, steps=10, workers=4,
                          drain_final=True)
        assert "drained" in log
        assert len(log.series("drained")) == 3

    def test_push_copies_caller_buffers(self):
        """Queued gradients must not alias caller arrays: reusing a push
        buffer next step cannot rewrite queued history."""
        model, _ = make_problem()
        opt = SGD(model.parameters(), lr=1.0)
        server = ShardedParameterServer(model, opt, num_shards=2,
                                        staleness=3)
        grads = [np.ones(p.shape) for p in opt.params]
        before = [p.data.copy() for p in opt.params]
        server.push(grads)
        for g in grads:
            g *= 1e6  # caller reuses its buffers
        server.flush()
        for b, p in zip(before, opt.params):
            np.testing.assert_allclose(p.data, b - 1.0)

    def test_drain_final_skipped_on_divergence(self):
        """Queued gradients are discarded, not drained, once the run has
        declared divergence."""
        model, loss_fn = make_problem()
        opt = SGD(model.parameters(), lr=1e9)
        log = train_async(model, opt, loss_fn, steps=50, workers=4,
                          drain_final=True)
        assert "diverged" in log
        assert "drained" not in log

    def test_flush_applies_grad_transform(self):
        """Drained updates get the same clipping in-loop updates do."""
        from repro.optim import clip_grad_norm

        model, _ = make_problem()
        opt = SGD(model.parameters(), lr=1.0)
        server = ShardedParameterServer(model, opt, num_shards=2,
                                        staleness=5)
        server.push([np.full(p.shape, 1e6) for p in opt.params])
        before = [p.data.copy() for p in opt.params]
        server.flush(
            grad_transform=lambda: clip_grad_norm(opt.params, 1e-9))
        for b, p in zip(before, opt.params):
            np.testing.assert_allclose(p.data, b, atol=1e-6)

    def test_drain_final_respects_static_clip_hook(self):
        """run(drain_final=True) forwards hooks.grad_clip_norm into the
        drain, so the last tau updates cannot blow up unclipped."""
        from repro.sim import TrainerHooks

        model, loss_fn = make_problem()
        opt = SGD(model.parameters(), lr=1.0)
        server = ShardedParameterServer(model, opt, num_shards=2,
                                        staleness=3)
        before = [p.data.copy() for p in opt.params]
        server.run(loss_fn, steps=6,
                   hooks=TrainerHooks(grad_clip_norm=1e-9),
                   drain_final=True)
        assert server.pending == 0
        for b, p in zip(before, opt.params):
            np.testing.assert_allclose(p.data, b, atol=1e-6)

    def test_per_shard_staleness(self):
        """Heterogeneous delays: assembly waits for the slowest shard."""
        model, loss_fn = make_problem()
        opt = SGD(model.parameters(), lr=0.05)
        server = ShardedParameterServer(model, opt, num_shards=2,
                                        staleness=[1, 3],
                                        policy="round_robin")
        assert server.effective_staleness == 3
        server.run(loss_fn, steps=10)
        # updates gated by the tau=3 shard: 10 pushes, first 3 not ready
        assert server.steps_applied == 7

    def test_validation(self):
        model, loss_fn = make_problem()
        opt = SGD(model.parameters(), lr=0.1)
        with pytest.raises(ValueError):
            ShardedParameterServer(model, opt, num_shards=0)
        with pytest.raises(ValueError):
            ShardedParameterServer(model, opt, num_shards=2,
                                   staleness=[1, 2, 3])
        with pytest.raises(ValueError):
            ShardedParameterServer(model, opt, num_shards=2, staleness=-1)
        with pytest.raises(ValueError):
            ShardedParameterServer(model, opt, num_shards=2,
                                   policy="nonsense")
        server = ShardedParameterServer(model, opt, num_shards=2)
        with pytest.raises(ValueError):
            server.run(loss_fn, steps=5, staleness_model="fifo")


class TestPolicies:
    NAMES = [f"layer{i}.weight" for i in range(10)]
    SIZES = [100, 1, 100, 1, 100, 1, 100, 1, 100, 1]

    def test_hash_is_stable_and_in_range(self):
        a = HashSharding().assign(self.NAMES, self.SIZES, 4)
        b = HashSharding().assign(self.NAMES, self.SIZES, 4)
        assert a == b
        assert all(0 <= s < 4 for s in a)

    def test_round_robin_cycles(self):
        assert RoundRobinSharding().assign(self.NAMES, self.SIZES, 3) == \
            [0, 1, 2, 0, 1, 2, 0, 1, 2, 0]

    def test_balanced_beats_round_robin_on_skew(self):
        def imbalance(assignment, num_shards):
            loads = [0] * num_shards
            for i, s in enumerate(assignment):
                loads[s] += self.SIZES[i]
            return max(loads) - min(loads)

        rr = imbalance(RoundRobinSharding().assign(
            self.NAMES, self.SIZES, 2), 2)
        bal = imbalance(GreedyBalancedSharding().assign(
            self.NAMES, self.SIZES, 2), 2)
        # round-robin lands every big tensor on one shard (495 apart);
        # LPT reaches the optimal 300 vs 205 split
        assert rr == 495
        assert bal == 95

    def test_make_policy_passthrough_and_custom(self):
        policy = HashSharding()
        assert make_policy(policy) is policy

        class Custom:
            name = "custom"

            def assign(self, names, sizes, num_shards):
                return [0] * len(names)

        assert make_policy(Custom()).name == "custom"
        with pytest.raises(TypeError):
            make_policy(123)

    def test_custom_policy_output_validated(self):
        model, _ = make_problem()
        opt = SGD(model.parameters(), lr=0.1)

        class Broken:
            name = "broken"

            def assign(self, names, sizes, num_shards):
                return [99] * len(names)

        with pytest.raises(ValueError):
            ShardedParameterServer(model, opt, num_shards=2, policy=Broken())

    def test_custom_policy_negative_shard_id_rejected(self):
        model, _ = make_problem()
        opt = SGD(model.parameters(), lr=0.1)

        class Negative:
            name = "negative"

            def assign(self, names, sizes, num_shards):
                return [-1] * len(names)

        with pytest.raises(ValueError):
            ShardedParameterServer(model, opt, num_shards=2,
                                   policy=Negative())

    def test_custom_policy_wrong_length_rejected(self):
        model, _ = make_problem()
        opt = SGD(model.parameters(), lr=0.1)

        class Short:
            name = "short"

            def assign(self, names, sizes, num_shards):
                return [0]

        with pytest.raises(ValueError):
            ShardedParameterServer(model, opt, num_shards=2, policy=Short())


class TestServerStateDict:
    def test_pending_queue_round_trip(self):
        """Queued (step, slices) entries, counters, and RNG position all
        survive state_dict/load_state_dict on a same-config server."""
        from repro.utils import decode_state, encode_state

        model, loss_fn = make_problem()
        opt = SGD(model.parameters(), lr=0.05)
        server = ShardedParameterServer(model, opt, num_shards=2,
                                        staleness=3, seed=7)
        server.run(loss_fn, steps=10)
        assert server.pending == 3
        state = decode_state(encode_state(server.state_dict()))

        model2, _ = make_problem()
        opt2 = SGD(model2.parameters(), lr=0.05)
        server2 = ShardedParameterServer(model2, opt2, num_shards=2,
                                         staleness=3, seed=99)
        server2.load_state_dict(state)
        assert server2.pending == 3
        assert server2.steps_pushed == server.steps_pushed
        assert server2.steps_applied == server.steps_applied
        for a, b in zip(server.shards, server2.shards):
            assert (a.pushes, a.applied, a.pulls) == \
                (b.pushes, b.applied, b.pulls)
            for (step_a, slices_a), (step_b, slices_b) in zip(a.queue,
                                                              b.queue):
                assert step_a == step_b
                for ga, gb in zip(slices_a, slices_b):
                    np.testing.assert_array_equal(ga, gb)
                    assert ga.dtype == gb.dtype
        # restored RNG continues the original stream
        np.testing.assert_array_equal(server.rng.random(4),
                                      server2.rng.random(4))

    def test_shard_count_mismatch_rejected(self):
        model, _ = make_problem()
        opt = SGD(model.parameters(), lr=0.05)
        server = ShardedParameterServer(model, opt, num_shards=2)
        state = server.state_dict()
        other = ShardedParameterServer(model, opt, num_shards=3)
        with pytest.raises(ValueError):
            other.load_state_dict(state)


class TestZeroSizeParameters:
    """A zero-element tensor is legal everywhere: placement, push/pull
    routing, and update application must all tolerate empty slices."""

    @staticmethod
    def make_params():
        from repro.autograd import Tensor

        full = Tensor(np.ones(4), requires_grad=True)
        empty = Tensor(np.zeros(0), requires_grad=True)
        return [full, empty]

    def test_server_runs_with_zero_size_parameter(self):
        params = self.make_params()
        opt = SGD(params, lr=0.5)
        server = ShardedParameterServer(None, opt, num_shards=2,
                                        policy="round_robin")
        assert server.shard_sizes() == [4, 0]
        for step in range(3):
            server.push([np.ones(4), np.zeros(0)], step=step)
            server.apply_one()
        assert server.steps_applied == 3
        np.testing.assert_allclose(params[0].data, np.ones(4) - 1.5)
        assert params[1].data.size == 0

    def test_balanced_policy_places_zero_size_last(self):
        names = ["a", "b", "empty"]
        sizes = [10, 6, 0]
        assignment = GreedyBalancedSharding().assign(names, sizes, 2)
        assert len(assignment) == 3
        assert all(0 <= s < 2 for s in assignment)

    def test_zero_size_with_more_shards_than_params(self):
        params = self.make_params()
        opt = SGD(params, lr=0.5)
        server = ShardedParameterServer(None, opt, num_shards=6,
                                        policy="round_robin")
        assert sum(1 for s in server.shards if s.empty) == 4
        server.push([np.ones(4), np.zeros(0)])
        assert server.apply_one(force=True) == 0
