"""The ``python -m repro.xp`` CLI: run / list / diff."""

import json

import pytest

from repro.bench import BenchReporter
from repro.xp import Matrix, ScenarioSpec, save_scenarios
from repro.xp.cli import main


@pytest.fixture()
def matrix_file(tmp_path):
    base = ScenarioSpec(name="cli", workload="toy_classifier",
                        workload_params={"samples": 64, "features": 4,
                                         "hidden": 8, "batch_size": 16},
                        optimizer="momentum_sgd",
                        optimizer_params={"lr": 0.05, "momentum": 0.9},
                        workers=2, reads=30, seed=0, smooth=5)
    matrix = Matrix(base, axes={
        "delay": {
            "const": {"delay": {"kind": "constant", "delay": 1.0}},
            "uniform": {"delay": {"kind": "uniform", "low": 0.5,
                                  "high": 1.5, "seed": 2}},
        }})
    path = tmp_path / "matrix.json"
    save_scenarios(matrix, path)
    return path


class TestList:
    def test_lists_expanded_scenarios(self, matrix_file, capsys):
        assert main(["list", str(matrix_file)]) == 0
        out = capsys.readouterr().out
        assert "cli/const" in out and "cli/uniform" in out
        assert "2 scenarios" in out


class TestRun:
    def test_run_writes_results_and_uses_cache(self, matrix_file, tmp_path,
                                               capsys):
        cache = tmp_path / "cache"
        out = tmp_path / "results.json"
        code = main(["run", str(matrix_file), "--jobs", "2",
                     "--cache", str(cache), "--out", str(out)])
        assert code == 0
        first = capsys.readouterr().out
        assert "2 scenarios: 0 cached, 2 computed" in first
        payload = json.loads(out.read_text())
        assert payload["misses"] == 2
        assert len(payload["results"]) == 2

        # identical rerun: zero recomputation, identical records
        code = main(["run", str(matrix_file), "--jobs", "2",
                     "--cache", str(cache), "--out", str(out)])
        assert code == 0
        second = capsys.readouterr().out
        assert "2 scenarios: 2 cached, 0 computed" in second
        rerun = json.loads(out.read_text())
        assert rerun["hits"] == 2
        for a, b in zip(payload["results"], rerun["results"]):
            assert a["metrics"] == b["metrics"]
            assert a["series"] == b["series"]
            assert a["spec_hash"] == b["spec_hash"]

    def test_no_cache_always_computes(self, matrix_file, tmp_path, capsys):
        assert main(["run", str(matrix_file), "--jobs", "1",
                     "--no-cache"]) == 0
        assert main(["run", str(matrix_file), "--jobs", "1",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "0 cached, 2 computed" in out


class TestDiff:
    def write(self, directory, metrics):
        directory.mkdir(parents=True, exist_ok=True)
        reporter = BenchReporter(out_dir=str(directory))
        reporter.record("suite", metrics, {"knob": 1})
        reporter.write("suite")

    def test_pass_exit_zero_and_report(self, tmp_path, capsys):
        base, fresh = tmp_path / "base", tmp_path / "fresh"
        self.write(base, {"final_loss": 1.0})
        self.write(fresh, {"final_loss": 1.02})
        report = tmp_path / "report.json"
        code = main(["diff", "--baseline", str(base), "--fresh",
                     str(fresh), "--report", str(report)])
        assert code == 0
        assert json.loads(report.read_text())["status"] == "pass"
        assert "1 records: 1 passed" in capsys.readouterr().out

    def test_regression_exit_one(self, tmp_path, capsys):
        base, fresh = tmp_path / "base", tmp_path / "fresh"
        self.write(base, {"final_loss": 1.0})
        self.write(fresh, {"final_loss": 3.0})
        code = main(["diff", "--baseline", str(base), "--fresh",
                     str(fresh), "--names", "suite"])
        assert code == 1
        assert "REGRESSION final_loss" in capsys.readouterr().out

    def test_tol_override_loosens_gate(self, tmp_path):
        base, fresh = tmp_path / "base", tmp_path / "fresh"
        self.write(base, {"final_loss": 1.0})
        self.write(fresh, {"final_loss": 1.4})
        assert main(["diff", "--baseline", str(base), "--fresh",
                     str(fresh)]) == 1
        assert main(["diff", "--baseline", str(base), "--fresh",
                     str(fresh), "--tol", "0.5"]) == 0
