"""Serve smoke suite: daemon up, two tenants, batched + cached +
quota-rejected submissions, clean shutdown.

This file is what ``make serve-smoke`` runs in tier-1 CI, so it keeps
to small specs and generous timeouts.  The full HTTP client path is
exercised — every interaction goes through :class:`repro.serve.Client`
over real localhost sockets — plus protocol edge cases (unknown
tickets, malformed bodies) and the ``python -m repro serve`` CLI.
"""

import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.cli import build_parser
from repro.serve import (AdmissionRejected, Client, ServeConfig,
                         ServeDaemon, ServeError)
from repro.xp.spec import Matrix, ScenarioSpec

SRC = Path(__file__).resolve().parent.parent / "src"


def make_spec(seed=0, name="smoke", **overrides):
    base = dict(name=name, workload="quadratic_bowl",
                workload_params={"dim": 8, "noise_horizon": 8},
                optimizer="momentum_sgd",
                optimizer_params={"lr": 0.02, "momentum": 0.5},
                delay={"kind": "constant", "delay": 1.0},
                workers=2, reads=25, seed=seed, smooth=4)
    base.update(overrides)
    return ScenarioSpec(**base)


@pytest.fixture
def daemon(tmp_path):
    d = ServeDaemon(ServeConfig(
        cache_dir=str(tmp_path / "cache"), min_workers=1,
        max_workers=2)).start()
    yield d
    d.stop()


class TestSmoke:
    def test_two_tenants_batched_cached_rejected_and_shutdown(
            self, tmp_path):
        daemon = ServeDaemon(ServeConfig(
            cache_dir=str(tmp_path / "cache"), min_workers=1,
            max_workers=2,
            admission_params={"max_pending": 64,
                              "max_inflight_per_tenant": 2})).start()
        try:
            alice = Client(daemon.address, tenant="alice")
            bob = Client(daemon.address, tenant="bob")

            # --- cross-tenant batching: two lockstep-compatible
            # specs, one engine run ---
            daemon.pause()
            ta = alice.submit(make_spec(seed=1, name="alice/a"))
            tb = bob.submit(make_spec(seed=2, name="bob/b"))
            daemon.resume()
            ra = alice.result(ta, timeout=120)
            rb = bob.result(tb, timeout=120)
            assert ra.env["serve_unit"] == "batched:2"
            assert rb.env["serve_unit"] == "batched:2"
            assert ra.name == "alice/a" and rb.name == "bob/b"

            # --- cached resubmission is answered without compute ---
            cached = alice.submit(make_spec(seed=1, name="alice/a"))
            assert cached.cached
            rc = alice.result(cached, timeout=30)
            assert rc.cached
            assert rc.identity() == ra.identity()

            # --- per-tenant quota rejects with HTTP 429 + reason ---
            daemon.pause()
            overload = [make_spec(seed=s, name=f"alice/q{s}")
                        for s in range(3)]
            with pytest.raises(AdmissionRejected) as info:
                alice.submit(overload)
            assert "tenant quota" in str(info.value)
            daemon.resume()

            # tenants are accounted separately in the status payload
            status = alice.status()
            assert status["tenants"]["alice"]["rejected"] == 3
            assert status["tenants"]["bob"]["rejected"] == 0
            counters = status["metrics"]["counters"]
            assert counters["serve.cache_hits.alice"] == 1
            assert counters["serve.cache_misses.bob"] == 1
            assert counters["serve.batched_jobs"] == 2

            # --- clean shutdown over the protocol ---
            alice.shutdown()
            deadline = time.monotonic() + 30
            while not daemon._stopped.is_set():
                assert time.monotonic() < deadline
                time.sleep(0.05)
        finally:
            daemon.stop()

    def test_matrix_submission_expands_like_run(self, daemon):
        client = Client(daemon.address, tenant="grid")
        matrix = Matrix(make_spec(seed=5, name="grid"), axes={
            "lr": {"slow": {"optimizer_params.lr": 0.01},
                   "fast": {"optimizer_params.lr": 0.04}}})
        tickets = client.submit(matrix)
        assert [t.name for t in tickets] == \
            [s.name for s in matrix.expand()]
        for ticket in tickets:
            record = client.result(ticket, timeout=120)
            assert record.name == ticket.name

    def test_streamed_events_bracket_the_iterations(self, daemon):
        client = Client(daemon.address, tenant="stream")
        ticket = client.submit(make_spec(seed=7, name="stream/s"))
        events = list(client.stream(ticket))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "queued"
        assert "started" in kinds
        assert kinds[-1] == "done"
        iterations = [e for e in events if e["event"] == "iteration"]
        assert iterations, "scalar units must stream iterations"
        assert all("staleness" in e and "sim_time" in e
                   for e in iterations)
        steps = [e["step"] for e in iterations]
        assert steps == sorted(steps)


class TestProtocolEdges:
    def test_unknown_ticket_is_a_serve_error(self, daemon):
        client = Client(daemon.address, tenant="x")
        with pytest.raises(ServeError, match="404|unknown"):
            client.result("t-424242", timeout=5)

    def test_malformed_submit_is_rejected_not_fatal(self, daemon):
        host, port = daemon.address
        request = urllib.request.Request(
            f"http://{host}:{port}/v1/submit",
            data=b"this is not json", method="POST")
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400
        # the daemon is still healthy afterwards
        assert Client(daemon.address).status()["jobs"] == 0

    def test_invalid_component_name_is_a_400(self, daemon):
        client = Client(daemon.address, tenant="x")
        bad = make_spec(seed=1).with_overrides(
            {"optimizer": "no_such_optimizer"})
        with pytest.raises(ServeError, match="400|invalid"):
            client.submit(bad)


class TestCli:
    def test_parser_accepts_serve_arguments(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--max-workers", "2",
             "--scheduler", "fifo", "--no-cache"])
        assert args.command == "serve"
        assert args.scheduler == "fifo"
        assert args.no_cache

    def test_python_m_repro_serve_round_trip(self, tmp_path):
        # the real CLI entry point: boot, submit over HTTP, shut down
        proc = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro", "serve", "--port",
             "0", "--max-workers", "2", "--cache",
             str(tmp_path / "cache")],
            cwd=str(tmp_path), stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"})
        try:
            banner = proc.stdout.readline()
            assert "listening on http://" in banner, banner
            address = banner.split("http://")[1].split()[0]
            host, port = address.split(":")
            client = Client((host, int(port)), tenant="cli")
            ticket = client.submit(make_spec(seed=11, name="cli/a"))
            record = client.result(ticket, timeout=120)
            assert record.name == "cli/a"
            client.shutdown()
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
