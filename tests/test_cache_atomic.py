"""ResultCache write atomicity under concurrency and crashes.

The ``parallel`` backend lets many processes share one ``.xp_cache``
directory; entries are published with write-temp-fsync-rename, so a
reader may see *no* entry or a *complete* entry, never a torn one.
These tests are the regression net for that property: hammering one
key from many writer threads while readers poll, crashing a writer
mid-serialization, and checking that the temp files never leak.
"""

import json
import threading

import pytest

from repro.run import run
from repro.xp import ResultCache, ScenarioSpec
from repro.xp.cache import ResultCache as CacheClass


def tiny_spec(**overrides):
    base = dict(name="atomic", workload="quadratic_bowl",
                workload_params={"dim": 8, "noise_horizon": 16},
                optimizer="sgd", optimizer_params={"lr": 0.02},
                delay={"kind": "constant", "delay": 1.0},
                workers=2, reads=8, seed=4, smooth=3)
    base.update(overrides)
    return ScenarioSpec(**base)


class TestConcurrentWrites:
    def test_readers_never_observe_a_torn_entry(self, tmp_path):
        # one spec, one result; 8 writer threads republish the same
        # key while readers poll.  Once the entry exists on disk,
        # every read must parse and hash-verify — a torn file would
        # surface as get() -> None despite the file existing.
        cache = ResultCache(tmp_path / "cache")
        spec = tiny_spec()
        result = run(spec, backend="serial").result
        key = spec.content_hash()
        path = cache.path_for(spec, key=key)

        stop = threading.Event()
        failures = []

        def writer():
            while not stop.is_set():
                cache.put(spec, result, key=key)

        def reader():
            while not stop.is_set():
                if path.is_file() \
                        and cache.get(spec, key=key) is None:
                    failures.append("torn read")
                    return

        threads = ([threading.Thread(target=writer) for _ in range(8)]
                   + [threading.Thread(target=reader) for _ in range(4)])
        for t in threads:
            t.start()
        # let the contention run briefly, then stop everyone
        threading.Event().wait(0.5)
        stop.set()
        for t in threads:
            t.join(timeout=10)
        assert not failures
        assert cache.get(spec, key=key) is not None

    def test_distinct_keys_from_parallel_runs_all_complete(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = [tiny_spec(name=f"atomic{i}", seed=i) for i in range(4)]
        run(specs, backend="parallel", jobs=2, cache=cache)
        assert len(cache) == 4
        for spec in specs:
            entry = cache.get(spec)
            assert entry is not None
            assert entry.spec_hash == spec.content_hash()

    def test_no_temp_files_leak(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = tiny_spec()
        result = run(spec, backend="serial").result
        for _ in range(20):
            cache.put(spec, result)
        assert list(cache.root.glob("*.tmp")) == []


class TestCrashedWrite:
    def test_interrupted_put_leaves_no_partial_entry(self, tmp_path,
                                                     monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        spec = tiny_spec()
        result = run(spec, backend="serial").result

        def exploding_dump(*args, **kwargs):
            raise RuntimeError("simulated crash mid-serialization")

        monkeypatch.setattr(json, "dump", exploding_dump)
        with pytest.raises(RuntimeError, match="simulated crash"):
            cache.put(spec, result)
        monkeypatch.undo()
        # no target file, no temp litter: the next put publishes clean
        assert cache.get(spec) is None
        assert list(cache.root.glob("*")) == []
        cache.put(spec, result)
        assert cache.get(spec) is not None

    def test_crash_cannot_clobber_existing_entry(self, tmp_path,
                                                 monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        spec = tiny_spec()
        result = run(spec, backend="serial").result
        cache.put(spec, result)

        def exploding_dump(*args, **kwargs):
            raise RuntimeError("boom")

        monkeypatch.setattr(json, "dump", exploding_dump)
        with pytest.raises(RuntimeError):
            cache.put(spec, result)
        monkeypatch.undo()
        entry = cache.get(spec)
        assert entry is not None
        assert entry.identity() == result.identity()


class TestHashVerification:
    def test_wrong_hash_content_is_a_miss_not_a_crash(self, tmp_path):
        cache = CacheClass(tmp_path / "cache")
        spec = tiny_spec()
        result = run(spec, backend="serial").result
        path = cache.put(spec, result)
        other = tiny_spec(name="other", seed=99)
        # file renamed under a foreign key: recorded hash disagrees
        foreign = cache.path_for(other)
        foreign.write_text(path.read_text())
        assert cache.get(other) is None

    def test_garbage_file_is_a_miss_not_a_crash(self, tmp_path):
        cache = CacheClass(tmp_path / "cache")
        spec = tiny_spec()
        cache.root.mkdir(parents=True)
        cache.path_for(spec).write_text('{"truncated": ')
        assert cache.get(spec) is None
