"""Zero-debias EMA correctness, including property-based checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ema import LogSpaceEMA, ZeroDebiasEMA


class TestZeroDebiasEMA:
    def test_first_update_is_exact(self):
        """Zero-debias makes the very first estimate equal the observation."""
        ema = ZeroDebiasEMA(beta=0.999)
        assert ema.update(7.5) == pytest.approx(7.5)

    @given(st.floats(-1e6, 1e6), st.floats(0.0, 0.999),
           st.integers(1, 200))
    @settings(max_examples=50, deadline=None)
    def test_constant_signal_is_exact(self, value, beta, steps):
        """Property: for a constant signal the debiased EMA is exact at
        every step (this is what zero-debias buys)."""
        ema = ZeroDebiasEMA(beta=beta)
        for _ in range(steps):
            out = ema.update(value)
        assert out == pytest.approx(value, rel=1e-9, abs=1e-9)

    def test_tracks_mean_of_noise(self):
        rng = np.random.default_rng(0)
        ema = ZeroDebiasEMA(beta=0.99)
        for _ in range(3000):
            ema.update(3.0 + rng.normal())
        assert ema.value == pytest.approx(3.0, abs=0.2)

    def test_array_support(self):
        ema = ZeroDebiasEMA(beta=0.9)
        ema.update(np.array([1.0, 2.0]))
        ema.update(np.array([1.0, 2.0]))
        np.testing.assert_allclose(ema.value, [1.0, 2.0])

    def test_read_before_update_raises(self):
        with pytest.raises(RuntimeError):
            ZeroDebiasEMA().value

    def test_beta_validation(self):
        with pytest.raises(ValueError):
            ZeroDebiasEMA(beta=1.0)

    def test_matches_manual_recursion(self):
        beta = 0.9
        values = [1.0, 5.0, 2.0, 8.0]
        ema = ZeroDebiasEMA(beta=beta)
        raw = 0.0
        for t, v in enumerate(values, start=1):
            out = ema.update(v)
            raw = beta * raw + (1 - beta) * v
            assert out == pytest.approx(raw / (1 - beta ** t))


class TestLogSpaceEMA:
    def test_constant_signal_exact(self):
        ema = LogSpaceEMA(beta=0.9)
        for _ in range(10):
            out = ema.update(42.0)
        assert out == pytest.approx(42.0)

    def test_geometric_decay_tracked_better_than_linear(self):
        """For a geometrically-decaying signal, the log-space EMA tracks the
        current level more closely than the linear-space EMA (Appendix E
        motivation)."""
        lin = ZeroDebiasEMA(beta=0.99)
        log = LogSpaceEMA(beta=0.99)
        value = 1e6
        for _ in range(500):
            value *= 0.97
            lin.update(value)
            log.update(value)
        assert abs(np.log(log.value) - np.log(value)) < \
            abs(np.log(lin.value) - np.log(value))

    def test_positive_output(self):
        ema = LogSpaceEMA(beta=0.5)
        ema.update(1e-20)
        assert ema.value > 0
