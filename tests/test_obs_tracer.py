"""repro.obs core: tracer, profiler, session scoping, Chrome export.

The tracer's span/instant records, the Chrome ``trace_event``
conversion and its structural validator, the idempotent
:class:`StepTimer`, the profiler's accumulation and ``repro top``
table, and the explicit-scope session semantics (innermost wins,
nothing active outside a ``with`` block) — plus the ``obs`` registry
kind every component is built through.
"""

import json

import pytest

from repro.obs import (MetricsRegistry, ObsSession, Profiler, StepTimer,
                       Tracer, active, enabled, observe,
                       validate_chrome_trace)
from repro.obs.tracer import CHROME_PHASES
from repro.registry import registry


class TestTracer:
    def test_span_records_nesting_and_args(self):
        tracer = Tracer()
        with tracer.span("outer", "cat", worker=1):
            with tracer.span("inner", "cat"):
                pass
        tracer.instant("tick", "cat", step=3)
        assert len(tracer) == 3
        spans = [r for r in tracer.records if r["ph"] == "X"]
        by_name = {r["name"]: r for r in spans}
        assert by_name["outer"]["args"] == {"worker": 1}
        # the inner span completes first and nests inside the outer one
        assert by_name["inner"]["ts"] >= by_name["outer"]["ts"]
        assert (by_name["inner"]["ts"] + by_name["inner"]["dur"]
                <= by_name["outer"]["ts"] + by_name["outer"]["dur"])

    def test_summary_and_categories(self):
        tracer = Tracer()
        with tracer.span("a", "one"):
            pass
        tracer.instant("b", "two")
        assert tracer.categories() == {"one": 1, "two": 1}
        summary = tracer.summary()
        assert summary["events"] == 2
        assert summary["spans"] == 1
        assert summary["instants"] == 1
        assert summary["by_category"] == {"one": 1, "two": 1}

    def test_to_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a", "cat", k="v"):
            tracer.instant("b", "cat")
        path = tmp_path / "trace.jsonl"
        tracer.to_jsonl(path)
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert lines == tracer.records

    def test_exception_inside_span_still_records(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom", "cat"):
                raise RuntimeError("x")
        assert len(tracer) == 1
        assert tracer.records[0]["name"] == "boom"


class TestChromeTrace:
    def build(self):
        tracer = Tracer(pid=7)
        with tracer.span("step", "optimizer", t=1):
            pass
        tracer.instant("fault:crash", "cluster.faults", worker=2)
        return tracer

    def test_chrome_trace_structure(self):
        payload = self.build().chrome_trace()
        events = payload["traceEvents"]
        assert payload["displayTimeUnit"] == "ms"
        # process metadata rides first, then the recorded events
        assert events[0]["ph"] == "M"
        assert events[0]["name"] == "process_name"
        phases = [e["ph"] for e in events]
        assert "X" in phases and "i" in phases
        for event in events:
            assert event["ph"] in CHROME_PHASES
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
        complete = next(e for e in events if e["ph"] == "X")
        assert complete["ts"] >= 0 and complete["dur"] >= 0
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["s"] == "t"

    def test_validator_round_trip_file(self, tmp_path):
        path = tmp_path / "trace.json"
        self.build().to_chrome_trace(path)
        payload = validate_chrome_trace(path)
        assert isinstance(payload["traceEvents"], list)

    @pytest.mark.parametrize("broken", [
        {"traceEvents": "nope"},
        {"traceEvents": [{"ph": "Z", "name": "x", "pid": 0, "tid": 0}]},
        {"traceEvents": [{"ph": "X", "name": "", "pid": 0, "tid": 0,
                          "cat": "c", "ts": 0, "dur": 1}]},
        {"traceEvents": [{"ph": "X", "name": "x", "pid": 0, "tid": 0,
                          "cat": "c", "ts": -1, "dur": 1}]},
        {"traceEvents": [{"ph": "X", "name": "x", "pid": 0, "tid": 0,
                          "cat": "c", "ts": 0}]},
        {"traceEvents": [{"ph": "i", "name": "x", "pid": 0, "tid": "0",
                          "cat": "c", "ts": 0}]},
    ])
    def test_validator_rejects_malformed_payloads(self, broken):
        with pytest.raises(ValueError):
            validate_chrome_trace(broken)


class TestSessionScoping:
    def test_nothing_active_by_default(self):
        assert active() is None
        assert not enabled()

    def test_innermost_session_wins_and_restores(self):
        outer = ObsSession(tracer=Tracer())
        inner = ObsSession(tracer=Tracer())
        with outer:
            assert active() is outer
            with inner:
                assert active() is inner
            assert active() is outer
        assert active() is None

    def test_observe_sugar_scopes_a_full_session(self):
        with observe() as session:
            assert active() is session
            assert session.tracer is not None
            assert session.metrics is not None
            assert session.profiler is not None
        assert active() is None

    def test_report_only_holds_present_components(self):
        session = ObsSession(profiler=Profiler())
        report = session.report()
        assert "profiler" in report
        assert "tracer" not in report and "metrics" not in report

    def test_obs_registry_kind_builds_every_component(self):
        names = registry.names("obs")
        assert {"tracer", "metrics", "profiler"} <= set(names)
        assert isinstance(registry.build("obs", "tracer"), Tracer)
        assert isinstance(registry.build("obs", "metrics"),
                          MetricsRegistry)
        assert isinstance(registry.build("obs", "profiler"), Profiler)
        session = ObsSession.from_registry()
        assert isinstance(session.tracer, Tracer)


class TestStepTimer:
    def test_disabled_timer_still_times(self):
        assert active() is None
        with StepTimer("work", cat="test") as timer:
            pass
        assert timer.elapsed >= 0.0

    def test_records_span_and_profile_when_active(self):
        with observe() as session:
            timer = StepTimer("work", cat="test").start()
            wall = timer.stop(extra=1)
        assert wall >= 0.0
        (record,) = session.tracer.records
        assert record["name"] == "work"
        assert record["cat"] == "test"
        assert record["args"] == {"extra": 1}
        assert "test:work" in session.profiler.summary()

    def test_stop_is_idempotent(self):
        with observe() as session:
            timer = StepTimer("work", cat="test").start()
            first = timer.stop()
            assert timer.stop() == first
        assert len(session.tracer) == 1


class TestProfiler:
    def test_accumulates_and_renders_top(self):
        profiler = Profiler()
        profiler.add("hot", 0.2)
        profiler.add("hot", 0.4)
        profiler.add("cold", 0.1)
        summary = profiler.summary()
        assert summary["hot"]["count"] == 2
        assert summary["hot"]["total_s"] == pytest.approx(0.6)
        assert summary["hot"]["mean_s"] == pytest.approx(0.3)
        table = profiler.render_top(limit=1)
        assert "hot" in table and "cold" not in table

    def test_empty_render(self):
        assert "no profiler samples" in Profiler().render_top()
