"""Unit tests for the serve layer's policies and bookkeeping.

Covers the pieces that decide *what runs when* without sockets or
worker processes: the batch-family grouping predicate, the quota
admission policy, the fifo and batching schedulers, the queue-depth
autoscaler, and the thread-safe job/ticket state store.
"""

import threading

import pytest

from repro.registry import registry
from repro.serve.batching import FAMILY_NAME, batchable, family_key
from repro.serve.jobs import ServeState
from repro.serve.policies import (BatchingScheduler, FifoScheduler,
                                  QueueDepthAutoscaler, QuotaAdmission)
from repro.xp.spec import ScenarioSpec


def make_spec(seed=0, name="unit", **overrides):
    base = dict(name=name, workload="quadratic_bowl",
                workload_params={"dim": 8, "noise_horizon": 8},
                optimizer="momentum_sgd",
                optimizer_params={"lr": 0.02, "momentum": 0.5},
                delay={"kind": "constant", "delay": 1.0},
                workers=2, reads=20, seed=seed, smooth=4)
    base.update(overrides)
    return ScenarioSpec(**base)


class TestFamilyKey:
    def test_seed_and_name_variants_share_a_family(self):
        a = make_spec(seed=1, name="alice/a")
        b = make_spec(seed=2, name="bob/b")
        assert family_key(a) == family_key(b) is not None
        assert a.content_hash() != b.content_hash()

    def test_differing_workload_params_split_families(self):
        a = make_spec(seed=1)
        b = make_spec(seed=1, optimizer_params={"lr": 0.03,
                                                "momentum": 0.5})
        assert family_key(a) != family_key(b)

    def test_non_lockstep_specs_have_no_family(self):
        stochastic = make_spec(delay={"kind": "uniform", "low": 0.5,
                                      "high": 1.5})
        assert not batchable(stochastic)
        assert family_key(stochastic) is None

    def test_replicated_specs_have_no_family(self):
        assert family_key(make_spec(replicates=4)) is None

    def test_member_name_never_leaks_into_the_family(self):
        # a member literally named like the canonical representative
        # must land in the same family as any other member
        a = make_spec(seed=1, name=FAMILY_NAME)
        b = make_spec(seed=2, name="other")
        assert family_key(a) == family_key(b)


class TestQuotaAdmission:
    def test_within_quota_admits(self):
        policy = QuotaAdmission(max_pending=10,
                                max_inflight_per_tenant=4)
        decision = policy.admit(tenant_active=2, queue_depth=5,
                                new_jobs=2, new_tickets=2)
        assert decision and decision.reason == ""

    def test_tenant_quota_rejects(self):
        policy = QuotaAdmission(max_pending=100,
                                max_inflight_per_tenant=4)
        decision = policy.admit(tenant_active=3, queue_depth=0,
                                new_jobs=2, new_tickets=2)
        assert not decision
        assert "tenant quota" in decision.reason

    def test_global_saturation_rejects(self):
        policy = QuotaAdmission(max_pending=8,
                                max_inflight_per_tenant=100)
        decision = policy.admit(tenant_active=0, queue_depth=7,
                                new_jobs=2, new_tickets=2)
        assert not decision
        assert "saturated" in decision.reason

    def test_cache_hits_cost_no_quota(self):
        # a submission fully answered by cache adds no jobs/tickets
        policy = QuotaAdmission(max_pending=1,
                                max_inflight_per_tenant=1)
        assert policy.admit(tenant_active=1, queue_depth=1,
                            new_jobs=0, new_tickets=0)


def pending_jobs(state, specs):
    with state.lock:
        jobs = []
        for spec in specs:
            key = spec.content_hash()
            job = state.new_job(spec, key, family_key(spec))
            state.new_ticket("t", spec, key, job)
            jobs.append(job)
    return jobs


class TestSchedulers:
    def test_fifo_respects_slots_and_order(self):
        state = ServeState()
        jobs = pending_jobs(state, [make_spec(seed=s, name=f"j{s}")
                                    for s in range(4)])
        plan = FifoScheduler().plan(jobs, slots=2, now=0.0)
        assert [[j.id for j in unit] for unit in plan] == \
            [[jobs[0].id], [jobs[1].id]]

    def test_batching_coalesces_one_family(self):
        state = ServeState()
        jobs = pending_jobs(state, [make_spec(seed=s, name=f"j{s}")
                                    for s in range(3)])
        plan = BatchingScheduler(min_batch=2).plan(jobs, slots=4,
                                                   now=0.0)
        assert len(plan) == 1
        assert [j.id for j in plan[0]] == [j.id for j in jobs]

    def test_batching_holds_a_lone_member_inside_the_window(self):
        state = ServeState()
        (job,) = pending_jobs(state, [make_spec(seed=1)])
        scheduler = BatchingScheduler(min_batch=2, batch_window=10.0)
        assert scheduler.plan([job], slots=4,
                              now=job.submitted + 1.0) == []
        # window expired: dispatch even under min_batch
        plan = scheduler.plan([job], slots=4, now=job.submitted + 11.0)
        assert [[j.id for j in u] for u in plan] == [[job.id]]

    def test_batching_splits_at_max_batch(self):
        state = ServeState()
        jobs = pending_jobs(state, [make_spec(seed=s, name=f"j{s}")
                                    for s in range(5)])
        plan = BatchingScheduler(max_batch=2, min_batch=2).plan(
            jobs, slots=4, now=0.0)
        assert [len(unit) for unit in plan] == [2, 2, 1]

    def test_unbatchable_jobs_dispatch_fifo_alongside_families(self):
        state = ServeState()
        scalar = make_spec(seed=9, name="scalar",
                           delay={"kind": "uniform", "low": 0.5,
                                  "high": 1.5})
        jobs = pending_jobs(state, [scalar, make_spec(seed=1, name="a"),
                                    make_spec(seed=2, name="b")])
        plan = BatchingScheduler(min_batch=2).plan(jobs, slots=4,
                                                   now=0.0)
        assert [len(unit) for unit in plan] == [1, 2]
        assert plan[0][0].family is None

    def test_slots_cap_dispatch(self):
        state = ServeState()
        jobs = pending_jobs(state, [
            make_spec(seed=s, name=f"j{s}",
                      delay={"kind": "uniform", "low": 0.5, "high": 1.5})
            for s in range(4)])
        plan = BatchingScheduler().plan(jobs, slots=1, now=0.0)
        assert len(plan) == 1


class TestAutoscaler:
    def test_scales_up_immediately_with_backlog(self):
        scaler = QueueDepthAutoscaler(backlog_per_worker=2)
        assert scaler.target(queue_depth=8, busy=1, active=1,
                             min_workers=1, max_workers=4) == 4

    def test_scales_down_only_after_hysteresis(self):
        scaler = QueueDepthAutoscaler(backlog_per_worker=2,
                                      idle_ticks=3)
        for _ in range(2):
            assert scaler.target(queue_depth=0, busy=0, active=4,
                                 min_workers=1, max_workers=4) == 4
        # third calm tick: shrink one step
        assert scaler.target(queue_depth=0, busy=0, active=4,
                             min_workers=1, max_workers=4) == 3

    def test_never_scales_below_busy_or_min(self):
        scaler = QueueDepthAutoscaler(backlog_per_worker=2,
                                      idle_ticks=1)
        assert scaler.target(queue_depth=0, busy=3, active=4,
                             min_workers=1, max_workers=4) == 3

    def test_clamps_to_bounds(self):
        scaler = QueueDepthAutoscaler(backlog_per_worker=1)
        assert scaler.target(queue_depth=100, busy=0, active=2,
                             min_workers=2, max_workers=3) == 3


class TestServeState:
    def test_inflight_dedup_index_lifecycle(self):
        state = ServeState()
        spec = make_spec(seed=1)
        key = spec.content_hash()
        with state.lock:
            job = state.new_job(spec, key, family_key(spec))
            t1 = state.new_ticket("alice", spec, key, job)
            t2 = state.new_ticket("bob", spec, key, job,
                                  deduplicated=True)
            assert state.inflight[key] == job.id
            assert state.tenant("alice").active == 1
            assert state.tenant("bob").active == 1
            state.take_pending([job.id])
            assert state.pending == []
            state.finish(job.id, result={"name": spec.name})
            assert key not in state.inflight
            assert state.tenant("alice").active == 0
            assert state.tenant("bob").active == 0
        finished = state.wait_finished(t1.id, timeout=0.0)
        assert finished.result == {"name": spec.name}
        assert state.wait_finished(t2.id, timeout=0.0) is finished

    def test_wait_events_replays_full_history(self):
        state = ServeState()
        spec = make_spec(seed=2)
        key = spec.content_hash()
        with state.lock:
            job = state.new_job(spec, key, None)
            ticket = state.new_ticket("t", spec, key, job)
            state.append_event(job.id, {"event": "started"})
            state.append_event(job.id, {"event": "iteration", "step": 0})
            state.finish(job.id, result={})
        events, cursor, finished = state.wait_events(ticket.id, 0, 0.0)
        assert [e["event"] for e in events] == \
            ["queued", "started", "iteration", "done"]
        assert finished
        # cursor resumes past what was already seen
        more, _, _ = state.wait_events(ticket.id, cursor, 0.0)
        assert more == []

    def test_wait_unblocks_across_threads(self):
        state = ServeState()
        spec = make_spec(seed=3)
        key = spec.content_hash()
        with state.lock:
            job = state.new_job(spec, key, None)
            ticket = state.new_ticket("t", spec, key, job)
        seen = {}

        def waiter():
            seen["job"] = state.wait_finished(ticket.id, timeout=10.0)

        thread = threading.Thread(target=waiter)
        thread.start()
        with state.lock:
            state.finish(job.id, result={"ok": True})
        thread.join(timeout=10.0)
        assert seen["job"].result == {"ok": True}

    def test_abort_all_fails_open_jobs(self):
        state = ServeState()
        spec = make_spec(seed=4)
        key = spec.content_hash()
        with state.lock:
            job = state.new_job(spec, key, None)
            ticket = state.new_ticket("t", spec, key, job)
        assert state.abort_all("shutdown") == 1
        finished = state.wait_finished(ticket.id, timeout=0.0)
        assert finished.error == "shutdown"

    def test_unknown_ticket_raises(self):
        state = ServeState()
        with pytest.raises(KeyError):
            state.wait_finished("t-999999", timeout=0.0)


def test_serve_kind_is_registered():
    names = registry.names("serve")
    assert {"quota", "fifo", "batching", "queue_depth"} <= set(names)
    # registry-built policies validate their configuration surface
    scheduler = registry.build("serve", "batching", max_batch=4)
    assert scheduler.max_batch == 4
    with pytest.raises(ValueError):
        registry.build("serve", "batching", bogus_knob=1)
