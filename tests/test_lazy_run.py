"""``spec.lazy`` integration: the run layer honoring the lazy engine.

Specs with ``lazy=True`` route workload loss evaluations through
:mod:`repro.lazy`; the records must be bit-identical to the eager
run of the same spec (the lazy engine's core contract), ``env``
must report which strategy actually executed, and backend
auto-selection must avoid engines that lack the capability.
"""

import pytest

from repro.run import run, select_backend
from repro.run.backends import execute_scalar
from repro.xp import ScenarioSpec


def lazy_spec(**overrides):
    base = dict(name="lazy", workload="toy_classifier",
                workload_params={"samples": 64, "features": 6,
                                 "hidden": 8, "batch_size": 16},
                optimizer="momentum_sgd",
                optimizer_params={"lr": 0.05, "momentum": 0.5},
                delay={"kind": "constant", "delay": 1.0},
                workers=2, reads=10, seed=11, smooth=4, lazy=True)
    base.update(overrides)
    return ScenarioSpec(**base)


class TestBitIdentity:
    def test_lazy_records_match_eager(self):
        eager = execute_scalar(lazy_spec(lazy=False))
        lazy = execute_scalar(lazy_spec())
        assert lazy.metrics == eager.metrics
        assert lazy.series == eager.series

    def test_env_reports_fused_engine(self):
        result = execute_scalar(lazy_spec())
        assert result.env["lazy_engine"] == "fused"

    def test_eager_env_has_no_engine_key(self):
        result = execute_scalar(lazy_spec(lazy=False))
        assert "lazy_engine" not in result.env

    def test_tensor_free_workload_falls_back(self):
        # the analytic quadratic oracle never constructs tensors, so
        # nothing records; the run still succeeds, eagerly
        spec = lazy_spec(workload="quadratic_bowl",
                         workload_params={"dim": 8, "noise_horizon": 16})
        result = execute_scalar(spec)
        assert result.env["lazy_engine"] == "fallback"
        eager = execute_scalar(lazy_spec(workload="quadratic_bowl",
                              workload_params={"dim": 8,
                                               "noise_horizon": 16},
                              lazy=False))
        assert result.metrics == eager.metrics

    def test_run_entry_point_honors_lazy(self):
        outcome = run(lazy_spec(), backend="serial")
        assert outcome.result.env["lazy_engine"] == "fused"


class TestSpecPlumbing:
    def test_lazy_false_hash_is_stable(self):
        # lazy=False canonicalizes away: old records keep their hashes
        assert (lazy_spec(lazy=False).content_hash()
                == ScenarioSpec(**{k: v for k, v in
                                   lazy_spec(lazy=False).as_dict().items()
                                   if k != "lazy"}).content_hash())

    def test_lazy_true_changes_hash(self):
        assert (lazy_spec().content_hash()
                != lazy_spec(lazy=False).content_hash())

    def test_from_dict_round_trip(self):
        spec = lazy_spec()
        again = ScenarioSpec.from_dict(spec.as_dict())
        assert again.lazy is True
        assert again.content_hash() == spec.content_hash()

    def test_lazy_false_omitted_from_canonical_json(self):
        assert '"lazy":' not in lazy_spec(lazy=False).canonical_json()
        assert '"lazy":true' in lazy_spec().canonical_json()


class TestSelection:
    def test_lazy_skips_vec(self):
        name, _ = select_backend([lazy_spec(replicates=4)])
        assert name != "vec"

    def test_lazy_skips_fleet(self):
        name, _ = select_backend([lazy_spec(workers=128)])
        assert name != "fleet"

    def test_eager_twin_still_selects_vec(self):
        name, _ = select_backend([lazy_spec(lazy=False, replicates=4)])
        assert name == "vec"
