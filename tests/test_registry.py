"""The typed central component registry (:mod:`repro.registry`)."""

import pytest

from repro.registry import (ComponentSchema, ParamSpec, Registry,
                            registry, schema_from_callable)


def widget_factory(size: int = 4, rate: float = 0.5, name: str = "w",
                   flag: bool = False, **extras):
    """A widget (test factory)."""
    return ("widget", size, rate, name, flag, extras)


def strict_factory(size: int, rate: float = 0.5):
    """A strict widget (no defaults on size, no **kwargs)."""
    return ("strict", size, rate)


class TestSchemaDerivation:
    def test_scalar_annotations_become_checked_params(self):
        schema = schema_from_callable(strict_factory)
        by_name = {p.name: p for p in schema.params}
        assert by_name["size"].annotation is int
        assert by_name["size"].required
        assert by_name["rate"].annotation is float
        assert not by_name["rate"].required
        assert not schema.open_ended

    def test_var_keyword_makes_schema_open_ended(self):
        assert schema_from_callable(widget_factory).open_ended

    def test_skip_records_caller_supplied_positionals(self):
        def factory(params, lr: float = 0.1):
            return (params, lr)

        schema = schema_from_callable(factory, skip=1)
        assert schema.positional == ("params",)
        assert schema.names() == ["lr"]

    def test_string_annotations_resolve(self):
        # `from __future__ import annotations` modules expose string
        # annotations; the derivation must still type them
        def factory(lr: "float" = 0.1):
            return lr

        schema = schema_from_callable(factory)
        assert schema.params[0].annotation is float


class TestSchemaValidation:
    def schema(self):
        return ComponentSchema(params=(
            ParamSpec("size", annotation=int),
            ParamSpec("rate", annotation=float, default=0.5),
        ))

    def test_unknown_key_rejected_with_declared_list(self):
        with pytest.raises(ValueError, match="unknown config keys"):
            self.schema().validate({"size": 1, "bogus": 2})

    def test_missing_required_key_rejected(self):
        with pytest.raises(ValueError, match="missing required"):
            self.schema().validate({"rate": 1.0})

    def test_type_mismatch_rejected(self):
        with pytest.raises(ValueError, match="expects int"):
            self.schema().validate({"size": "big"})

    def test_bool_is_not_a_number(self):
        with pytest.raises(ValueError, match="expects float"):
            self.schema().validate({"size": 1, "rate": True})

    def test_int_satisfies_float(self):
        self.schema().validate({"size": 1, "rate": 2})

    def test_none_passes_any_annotation(self):
        self.schema().validate({"size": 1, "rate": None})

    def test_open_ended_accepts_unknown_keys(self):
        ComponentSchema(open_ended=True).validate({"anything": 1})


class TestRegistryStore:
    def test_register_build_roundtrip(self):
        reg = Registry()
        reg.register("thing", "widget", widget_factory)
        built = reg.build("thing", "widget", size=2, rate=1.5)
        assert built[:3] == ("widget", 2, 1.5)

    def test_unknown_name_lists_alternatives(self):
        reg = Registry()
        reg.register("thing", "widget", widget_factory)
        with pytest.raises(ValueError, match="choose from"):
            reg.get("thing", "nope")

    def test_reregistration_replaces(self):
        reg = Registry()
        reg.register("thing", "widget", widget_factory)
        reg.register("thing", "widget", strict_factory)
        assert reg.get("thing", "widget").factory is strict_factory

    def test_description_defaults_to_docstring(self):
        reg = Registry()
        comp = reg.register("thing", "widget", widget_factory)
        assert comp.description == "A widget (test factory)."

    def test_describe_lists_params(self):
        reg = Registry()
        reg.register("thing", "strict", strict_factory)
        (entry,) = reg.describe("thing")
        assert entry["name"] == "strict"
        assert entry["params"] == ["size", "rate"]
        assert not entry["open_ended"]

    def test_build_validates_before_instantiating(self):
        calls = []

        def factory(size: int = 1):
            calls.append(size)
            return size

        reg = Registry()
        reg.register("thing", "w", factory)
        with pytest.raises(ValueError, match="unknown config keys"):
            reg.build("thing", "w", wrong=1)
        assert calls == []

    def test_positional_args_pass_through(self):
        reg = Registry()
        reg.register("opt", "sgd", lambda params, lr=0.1: (params, lr),
                     skip_positional=1)
        params = [1, 2, 3]
        assert reg.build("opt", "sgd", params, lr=0.5) == (params, 0.5)

    def test_unregister_is_idempotent(self):
        reg = Registry()
        reg.register("thing", "w", widget_factory)
        reg.unregister("thing", "w")
        reg.unregister("thing", "w")
        assert not reg.has("thing", "w")

    def test_extra_metadata_stored(self):
        reg = Registry()
        comp = reg.register("thing", "w", widget_factory,
                            extra={"twin": strict_factory})
        assert comp.extra["twin"] is strict_factory


class TestGlobalRegistry:
    """The process-global instance every subsystem registers into."""

    BUILTIN_KINDS = {
        "optimizer": {"sgd", "momentum_sgd", "adam", "adagrad",
                      "rmsprop", "yellowfin", "closed_loop_yellowfin"},
        "workload": {"toy_classifier", "quadratic_bowl",
                     "cifar10_resnet", "cifar100_resnet"},
        "delay": {"constant", "uniform", "exponential", "pareto",
                  "heterogeneous", "trace"},
        "fault": {"crash", "straggler", "pause", "injector"},
        "sharding": {"hash", "round_robin", "balanced"},
        "aggregator": {"replicate_stats"},
        "vec_optimizer": {"sgd", "momentum_sgd", "adam", "yellowfin",
                          "closed_loop_yellowfin"},
        "vec_workload": {"quadratic_bowl"},
        "backend": {"serial", "cluster", "parallel", "vec", "mp"},
    }

    @pytest.mark.parametrize("kind", sorted(BUILTIN_KINDS))
    def test_builtins_registered(self, kind):
        # lazy provider loading: lookups work without pre-importing
        # the provider modules explicitly
        assert self.BUILTIN_KINDS[kind] <= set(registry.names(kind))

    def test_legacy_registration_helpers_share_the_store(self):
        from repro.xp.factories import register_optimizer

        def custom(params, lr: float = 0.1):
            """Custom optimizer for the registry test."""
            return ("custom", lr)

        register_optimizer("_registry_test_opt", custom)
        try:
            assert registry.has("optimizer", "_registry_test_opt")
            assert registry.build("optimizer", "_registry_test_opt",
                                  [], lr=0.3) == ("custom", 0.3)
        finally:
            registry.unregister("optimizer", "_registry_test_opt")

    def test_optimizer_param_typo_fails_with_declared_keys(self):
        from repro.xp.factories import build_optimizer

        with pytest.raises(ValueError, match="unknown config keys"):
            build_optimizer("adam", [], learning_rate=0.1)
