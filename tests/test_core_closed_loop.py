"""Total-momentum estimation and the closed-loop controller (Section 4)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import ClosedLoopYellowFin, TotalMomentumEstimator, YellowFin


class TestTotalMomentumEstimator:
    def test_not_ready_returns_none(self):
        est = TotalMomentumEstimator(staleness=0)
        est.record_iterate(np.array([1.0]))
        assert est.estimate(np.array([0.1]), 0.1) is None

    def test_recovers_momentum_sync_deterministic(self):
        """On deterministic momentum GD (tau = 0), the estimate must equal
        the algorithmic momentum exactly once warmed up."""
        mu, lr, h = 0.7, 0.05, np.array([1.0, 3.0])
        est = TotalMomentumEstimator(staleness=0)
        x = np.array([5.0, -4.0])
        x_prev = x.copy()
        est.record_iterate(x)
        estimates = []
        for _ in range(10):
            g = h * x
            mu_hat = est.estimate(g, lr)
            x_next = x - lr * g + mu * (x - x_prev)
            x_prev, x = x, x_next
            est.record_iterate(x)
            if mu_hat is not None:
                estimates.append(mu_hat)
        assert len(estimates) >= 5
        np.testing.assert_allclose(estimates[2:], mu, atol=1e-9)

    def test_async_staleness_inflates_total_momentum(self):
        """With delayed gradients, measured total momentum exceeds the
        algorithmic value (the Mitliagkas et al. phenomenon, Fig. 4)."""
        from collections import deque
        mu, lr, tau = 0.3, 0.02, 4
        h = np.array([1.0, 2.0])
        rng = np.random.default_rng(0)
        est = TotalMomentumEstimator(staleness=tau)
        x = np.array([3.0, -2.0])
        x_prev = x.copy()
        est.record_iterate(x)
        queue = deque()
        estimates = []
        for _ in range(300):
            queue.append(h * x + 0.01 * rng.normal(size=2))
            if len(queue) <= tau:
                continue
            g = queue.popleft()  # gradient evaluated tau steps ago
            mu_hat = est.estimate(g, lr)
            x_next = x - lr * g + mu * (x - x_prev)
            x_prev, x = x, x_next
            est.record_iterate(x)
            if mu_hat is not None:
                estimates.append(mu_hat)
        assert np.median(estimates[20:]) > mu + 0.02

    def test_validation(self):
        with pytest.raises(ValueError):
            TotalMomentumEstimator(staleness=-1)


class TestClosedLoopYellowFin:
    def test_sync_tracks_target(self):
        """With tau = 0 the controller should keep algorithmic momentum near
        the SingleStep target (nothing to compensate)."""
        p = Tensor(np.array([5.0, -5.0]), requires_grad=True)
        opt = ClosedLoopYellowFin([p], staleness=0, gamma=0.3)
        rng = np.random.default_rng(0)
        h = np.array([1.0, 10.0])
        for _ in range(300):
            p.grad = h * p.data + 0.01 * rng.normal(size=2)
            opt.step()
        assert opt.stats()["algorithmic_momentum"] == pytest.approx(
            opt.momentum, abs=0.1)

    def test_converges_on_quadratic(self):
        p = Tensor(np.array([1.0, -1.0]), requires_grad=True)
        opt = ClosedLoopYellowFin([p], staleness=0, beta=0.99)
        h = np.array([1.0, 4.0])
        best = np.inf
        for _ in range(600):
            p.grad = h * p.data
            opt.step()
            best = min(best, float(np.abs(p.data).max()))
        assert best < 1e-3

    def test_async_lowers_algorithmic_momentum(self):
        """Under staleness, the controller must push algorithmic momentum
        BELOW the target to compensate (Fig. 4 right)."""
        from collections import deque
        tau = 8
        h = np.array([1.0, 5.0])
        rng = np.random.default_rng(1)

        def run(closed_loop):
            p = Tensor(np.array([1.0, -1.0]), requires_grad=True)
            if closed_loop:
                opt = ClosedLoopYellowFin([p], staleness=tau, gamma=0.05,
                                          beta=0.99)
            else:
                opt = YellowFin([p], beta=0.99)
            queue = deque()
            for _ in range(800):
                queue.append(h * p.data + 0.05 * rng.normal(size=2))
                if len(queue) <= tau:
                    continue
                g = queue.popleft()
                p.grad = g
                opt.step()
            return opt

        opt = run(closed_loop=True)
        stats = opt.stats()
        assert stats["algorithmic_momentum"] < opt.momentum - 0.01

    def test_stats_contain_controller_fields(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = ClosedLoopYellowFin([p], staleness=0)
        p.grad = np.array([1.0])
        opt.step()
        stats = opt.stats()
        assert "algorithmic_momentum" in stats
        assert "total_momentum" in stats

    def test_momentum_bounds_respected(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = ClosedLoopYellowFin([p], staleness=0, gamma=10.0,
                                  momentum_bounds=(-0.5, 0.9))
        for _ in range(50):
            p.grad = p.data.copy()
            opt.step()
        assert -0.5 <= opt.stats()["algorithmic_momentum"] <= 0.9
