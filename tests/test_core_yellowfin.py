"""YellowFin optimizer behaviour: tuning dynamics and options."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F
from repro import nn
from repro.core import YellowFin
from repro.core.single_step import robust_momentum_floor


# NOTE on scales: YellowFin's curvature oracle h_t = ||g_t||^2 relies on
# the Fisher-approximates-Hessian property of log-likelihood losses, which
# holds when gradients are at neural-net scale (O(1)).  Quadratic test
# problems therefore start at x0 ~ O(1); at x0 = 5 with steep curvature the
# proxy overestimates curvature ~600x and the tuner is (correctly, per the
# algorithm) extremely conservative.
def quadratic_setup(h=np.array([1.0, 2.0]), x0=1.0):
    p = Tensor(np.full(2, x0), requires_grad=True)
    return p, h


def run_yf(opt, p, h, steps, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    best = np.inf
    for _ in range(steps):
        p.grad = h * p.data + (noise * rng.normal(size=p.shape)
                               if noise else 0.0)
        opt.step()
        best = min(best, float(np.abs(p.data).max()))
    return best


class TestConvergence:
    def test_converges_on_quadratic_no_tuning(self):
        p, h = quadratic_setup()
        opt = YellowFin([p], beta=0.99)
        best = run_yf(opt, p, h, 600)
        assert best < 1e-3

    def test_converges_with_noise(self):
        p, h = quadratic_setup()
        opt = YellowFin([p], beta=0.99)
        best = run_yf(opt, p, h, 800, noise=0.05)
        assert best < 0.5

    def test_trains_small_net(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(64, 4))
        y = (x[:, 0] - x[:, 2] > 0).astype(int)
        model = nn.Sequential(nn.Linear(4, 16, seed=0), nn.ReLU(),
                              nn.Linear(16, 2, seed=1))
        opt = YellowFin(model.parameters())
        first = last = None
        for _ in range(120):
            model.zero_grad()
            loss = F.cross_entropy(model(Tensor(x)), y)
            loss.backward()
            opt.step()
            first = first if first is not None else float(loss.data)
            last = float(loss.data)
        assert last < 0.5 * first


class TestTunerDynamics:
    def test_momentum_responds_to_conditioning(self):
        """Ill-conditioned quadratic must drive momentum toward mu*(kappa)."""
        h = np.array([1.0, 100.0])
        p = Tensor(np.array([1.0, 1.0]), requires_grad=True)
        opt = YellowFin([p], beta=0.9)
        run_yf(opt, p, h, 300)
        # gradient directions rotate, so measured kappa is below the true
        # 100, but the momentum must be clearly nonzero
        assert opt.momentum > 0.1

    def test_hyperparams_stay_in_robust_region(self):
        p, h = quadratic_setup()
        opt = YellowFin([p])
        run_yf(opt, p, h, 100)
        res = opt.last_result
        assert res is not None
        floor = robust_momentum_floor(opt.measurements.curvature.hmax,
                                      opt.measurements.curvature.hmin)
        assert res.mu >= floor - 1e-12

    def test_slow_start_discounts_lr(self):
        p, h = quadratic_setup()
        opt = YellowFin([p], window=20, slow_start=True)
        p.grad = h * p.data
        opt.step()
        # at t=0 the discount factor is 1/(10*20)
        assert opt.effective_lr() <= opt.lr * opt.lr_factor * 2 / 200.0

    def test_slow_start_expires(self):
        p, h = quadratic_setup()
        opt = YellowFin([p], window=2, slow_start=True)
        run_yf(opt, p, h, 50)
        assert opt.effective_lr() == pytest.approx(opt.lr)

    def test_lr_factor_scales(self):
        p, h = quadratic_setup()
        opt = YellowFin([p], lr_factor=3.0, slow_start=False)
        run_yf(opt, p, h, 5)
        assert opt.effective_lr() == pytest.approx(3.0 * opt.lr)

    def test_prescribed_momentum(self):
        p, h = quadratic_setup()
        opt = YellowFin([p], prescribed_momentum=0.9)
        run_yf(opt, p, h, 30)
        assert opt.effective_momentum() == 0.9
        # the target is still tuned and logged
        assert opt.momentum != 0.9

    def test_stats_before_and_after_step(self):
        p, h = quadratic_setup()
        opt = YellowFin([p])
        stats0 = opt.stats()
        assert np.isnan(stats0["hmax"])
        run_yf(opt, p, h, 3)
        stats = opt.stats()
        assert stats["hmax"] >= stats["hmin"] > 0

    def test_adaptive_clip_toggle(self):
        p, h = quadratic_setup()
        assert YellowFin([p], adaptive_clip=False).clipper is None
        assert YellowFin([p], adaptive_clip=True).clipper is not None


class TestValidation:
    def test_bad_init(self):
        p, _ = quadratic_setup()
        with pytest.raises(ValueError):
            YellowFin([p], lr=0.0)
        with pytest.raises(ValueError):
            YellowFin([p], momentum=1.0)
