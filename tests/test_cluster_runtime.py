"""Cluster runtime: facade equivalence, delay models, staleness metrics."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, functional as F
from repro.cluster import (ClusterRuntime, ConstantDelay, ExponentialDelay,
                           FaultInjector, HeterogeneousDelay, ParetoDelay,
                           TraceReplayDelay, UniformDelay, WorkerCrash,
                           make_delay_model)
from repro.optim import MomentumSGD, SGD
from repro.sim import (ShardedParameterServer, event_timeline_summary,
                       staleness_histogram, staleness_summary, train_async,
                       train_sync)


def make_problem(seed=3):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(32, 3))
    y = (x[:, 0] > 0).astype(int)
    model = nn.Sequential(nn.Linear(3, 8, seed=0), nn.ReLU(),
                          nn.Linear(8, 2, seed=1))

    def loss_fn():
        return F.cross_entropy(model(Tensor(x)), y)

    return model, loss_fn


def flat(model):
    return np.concatenate([p.data.reshape(-1) for p in model.parameters()])


class TestFacadeEquivalence:
    """train_async over ClusterRuntime == the legacy queue protocol,
    bit for bit.  The legacy loop (ShardedParameterServer.run) is kept
    precisely so this property stays checkable."""

    @pytest.mark.parametrize("workers", [1, 4, 8])
    @pytest.mark.parametrize("num_shards", [1, 3])
    def test_round_robin_bitwise(self, workers, num_shards):
        m1, l1 = make_problem()
        o1 = MomentumSGD(m1.parameters(), lr=0.1, momentum=0.5)
        server = ShardedParameterServer(m1, o1, num_shards=num_shards,
                                        staleness=workers - 1, seed=11)
        log1 = server.run(l1, steps=40)

        m2, l2 = make_problem()
        o2 = MomentumSGD(m2.parameters(), lr=0.1, momentum=0.5)
        log2 = train_async(m2, o2, l2, steps=40, workers=workers,
                           num_shards=num_shards, seed=11)
        assert log1.scalars["loss"] == log2.scalars["loss"]
        np.testing.assert_array_equal(flat(m1), flat(m2))

    def test_random_model_bitwise(self):
        m1, l1 = make_problem()
        o1 = MomentumSGD(m1.parameters(), lr=0.1, momentum=0.5)
        server = ShardedParameterServer(m1, o1, num_shards=2, staleness=3,
                                        seed=11)
        log1 = server.run(l1, steps=40, staleness_model="random")

        m2, l2 = make_problem()
        o2 = MomentumSGD(m2.parameters(), lr=0.1, momentum=0.5)
        log2 = train_async(m2, o2, l2, steps=40, workers=4, num_shards=2,
                           seed=11, staleness_model="random")
        assert log1.scalars["loss"] == log2.scalars["loss"]
        np.testing.assert_array_equal(flat(m1), flat(m2))

    def test_drain_final_bitwise(self):
        m1, l1 = make_problem()
        o1 = SGD(m1.parameters(), lr=0.05)
        server = ShardedParameterServer(m1, o1, num_shards=2, staleness=3,
                                        seed=11)
        log1 = server.run(l1, steps=10, drain_final=True)

        m2, l2 = make_problem()
        o2 = SGD(m2.parameters(), lr=0.05)
        log2 = train_async(m2, o2, l2, steps=10, workers=4, num_shards=2,
                           seed=11, drain_final=True)
        assert log1.scalars["drained"] == log2.scalars["drained"]
        np.testing.assert_array_equal(flat(m1), flat(m2))

    def test_steps_below_staleness_no_updates(self):
        model, loss_fn = make_problem()
        opt = SGD(model.parameters(), lr=0.5)
        before = flat(model).copy()
        log = train_async(model, opt, loss_fn, steps=3, workers=8)
        assert len(log.series("loss")) == 3
        np.testing.assert_array_equal(flat(model), before)

    def test_workers_one_equals_sync(self):
        m1, l1 = make_problem()
        o1 = MomentumSGD(m1.parameters(), lr=0.1, momentum=0.5)
        log_sync = train_sync(m1, o1, l1, steps=20)

        m2, l2 = make_problem()
        o2 = MomentumSGD(m2.parameters(), lr=0.1, momentum=0.5)
        log_async = train_async(m2, o2, l2, steps=20, workers=1)
        assert log_sync.scalars["loss"] == log_async.scalars["loss"]
        np.testing.assert_array_equal(flat(m1), flat(m2))


class TestTimedRuntime:
    def test_constant_delay_staleness_is_tau(self):
        """After warmup every committed update is exactly tau stale."""
        model, loss_fn = make_problem()
        opt = SGD(model.parameters(), lr=0.05)
        runtime = ClusterRuntime(model, opt, loss_fn, workers=4,
                                 delay_model=ConstantDelay(1.0))
        runtime.run(reads=40)
        staleness = runtime.log.series("staleness")
        # the first few commits are less stale (cold queue); the steady
        # state is exactly tau = 3
        assert set(staleness[6:]) == {3.0}

    def test_nonconstant_delay_spreads_staleness(self):
        model, loss_fn = make_problem()
        opt = SGD(model.parameters(), lr=0.05)
        runtime = ClusterRuntime(model, opt, loss_fn, workers=4,
                                 delay_model=ParetoDelay(alpha=1.2,
                                                         scale=0.5, seed=0))
        runtime.run(reads=120)
        staleness = runtime.log.series("staleness")
        assert len(set(staleness.tolist())) > 1  # not a single fixed tau
        assert staleness.max() >= 3

    def test_update_count_and_in_flight(self):
        model, loss_fn = make_problem()
        opt = SGD(model.parameters(), lr=0.05)
        runtime = ClusterRuntime(model, opt, loss_fn, workers=4)
        runtime.run(reads=20)
        assert runtime.reads_done == 20
        assert runtime.updates_done + runtime.in_flight == 20
        dropped = runtime.discard_in_flight()
        assert dropped == runtime.discarded
        assert runtime.in_flight == 0

    def test_worker_stats_cover_all_reads(self):
        model, loss_fn = make_problem()
        opt = SGD(model.parameters(), lr=0.05)
        runtime = ClusterRuntime(model, opt, loss_fn, workers=3)
        runtime.run(reads=30)
        stats = runtime.worker_stats()
        assert sum(w["reads"] for w in stats) == 30
        assert all(w["alive"] for w in stats)

    def test_divergence_stops_run(self):
        model, loss_fn = make_problem()
        opt = SGD(model.parameters(), lr=1e9)
        runtime = ClusterRuntime(model, opt, loss_fn, workers=4)
        log = runtime.run(reads=200)
        assert "diverged" in log
        assert runtime.diverged
        assert len(log.series("loss")) < 200

    def test_resume_run_with_larger_budget_matches_single_run(self):
        """Budgets are totals: run(20) then run(40) == run(40)."""
        m1, l1 = make_problem()
        o1 = SGD(m1.parameters(), lr=0.05)
        rt1 = ClusterRuntime(m1, o1, l1, workers=4,
                             delay_model=UniformDelay(0.5, 1.5, seed=2))
        rt1.run(reads=40)

        m2, l2 = make_problem()
        o2 = SGD(m2.parameters(), lr=0.05)
        rt2 = ClusterRuntime(m2, o2, l2, workers=4,
                             delay_model=UniformDelay(0.5, 1.5, seed=2))
        rt2.run(reads=20)
        rt2.run(reads=40)
        assert rt1.log.scalars["loss"] == rt2.log.scalars["loss"]
        np.testing.assert_array_equal(flat(m1), flat(m2))

    def test_string_delay_spec_is_seeded(self):
        """delay_model="pareto" + seed=k must be reproducible: the
        resolved model draws from the runtime's seeded stream."""
        def run(seed):
            model, loss_fn = make_problem()
            opt = SGD(model.parameters(), lr=0.05)
            runtime = ClusterRuntime(model, opt, loss_fn, workers=4,
                                     delay_model="pareto", seed=seed)
            runtime.run(reads=60)
            return runtime.log.scalars["loss"]

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_resume_after_discard_redispatches_idle_workers(self):
        """discard_in_flight leaves alive workers with nothing pending;
        a later run with a larger budget must wake them."""
        model, loss_fn = make_problem()
        opt = SGD(model.parameters(), lr=0.05)
        runtime = ClusterRuntime(model, opt, loss_fn, workers=4)
        runtime.run(reads=20)
        runtime.discard_in_flight()
        runtime.run(reads=40)
        assert runtime.reads_done == 40
        assert runtime.updates_done > 0

    def test_resume_wake_skips_dead_workers(self):
        """The resume wake-up loop dispatches only *alive* idle workers.

        A worker mid-downtime has its restart event kept by
        discard_in_flight; waking it too would double-dispatch it (one
        read from the wake, another when the restart fires)."""
        model, loss_fn = make_problem()
        opt = SGD(model.parameters(), lr=0.05)
        faults = FaultInjector(scheduled=[
            WorkerCrash(worker=0, time=2.0, downtime=100.0)])
        runtime = ClusterRuntime(model, opt, loss_fn, workers=3,
                                 faults=faults)
        runtime.run(reads=12)
        assert not runtime.workers[0].alive
        runtime.discard_in_flight()
        dispatched = []
        original = runtime._read_and_dispatch

        def spy(worker):
            dispatched.append((worker.worker_id, worker.alive))
            return original(worker)

        runtime._read_and_dispatch = spy
        runtime.run(reads=24)
        assert runtime.reads_done == 24
        assert dispatched, "resume never dispatched anything"
        assert all(alive for _, alive in dispatched)

    def test_validation(self):
        model, loss_fn = make_problem()
        opt = SGD(model.parameters(), lr=0.1)
        with pytest.raises(ValueError):
            ClusterRuntime(model, opt, loss_fn, workers=0)
        with pytest.raises(ValueError):
            ClusterRuntime(model, opt, loss_fn, delivery="lifo")
        with pytest.raises(ValueError):
            ClusterRuntime(model, opt, loss_fn, queue_staleness=-1)
        runtime = ClusterRuntime(model, opt, loss_fn)
        with pytest.raises(ValueError):
            runtime.run(reads=-1)


class TestDelayModels:
    def test_factory_names_and_validation(self):
        assert isinstance(make_delay_model("constant"), ConstantDelay)
        assert isinstance(make_delay_model("pareto", seed=0), ParetoDelay)
        model = ConstantDelay(2.0)
        assert make_delay_model(model) is model
        with pytest.raises(ValueError):
            make_delay_model("gaussian")
        with pytest.raises(TypeError):
            make_delay_model(3.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ConstantDelay(0.0)
        with pytest.raises(ValueError):
            UniformDelay(2.0, 1.0)
        with pytest.raises(ValueError):
            ExponentialDelay(mean=-1.0)
        with pytest.raises(ValueError):
            ParetoDelay(alpha=0.0)
        with pytest.raises(ValueError):
            HeterogeneousDelay([])

    def test_samples_positive_and_seeded(self):
        for cls in (UniformDelay, ExponentialDelay, ParetoDelay):
            a = cls(seed=5)
            b = cls(seed=5)
            sa = [a.sample(0, 0.0) for _ in range(50)]
            sb = [b.sample(0, 0.0) for _ in range(50)]
            assert sa == sb
            assert all(s > 0 for s in sa)

    def test_heterogeneous_routes_by_worker(self):
        model = HeterogeneousDelay([ConstantDelay(1.0), ConstantDelay(9.0)])
        assert model.sample(0, 0.0) == 1.0
        assert model.sample(1, 0.0) == 9.0
        assert model.sample(2, 0.0) == 1.0  # cycles

    def test_trace_replay_global_and_per_worker(self):
        global_trace = TraceReplayDelay({"delays": [1.0, 2.0, 3.0]})
        assert [global_trace.sample(7, 0.0) for _ in range(4)] == \
            [1.0, 2.0, 3.0, 1.0]
        per_worker = TraceReplayDelay(
            {"workers": {"0": [1.0], "1": [5.0, 6.0]}})
        assert per_worker.sample(0, 0.0) == 1.0
        assert per_worker.sample(1, 0.0) == 5.0
        assert per_worker.sample(1, 0.0) == 6.0
        assert per_worker.sample(1, 0.0) == 5.0  # lane cycles
        with pytest.raises(ValueError):
            TraceReplayDelay({"delays": []})
        with pytest.raises(ValueError):
            TraceReplayDelay({"delays": [1.0, -1.0]})
        with pytest.raises(ValueError):
            TraceReplayDelay({"nope": []})

    def test_factory_dict_config_routes_through_registry(self):
        model = make_delay_model({"kind": "uniform", "low": 0.2,
                                  "high": 0.9, "seed": 4})
        assert isinstance(model, UniformDelay)
        assert 0.2 <= model.sample(0, 0.0) <= 0.9
        nested = make_delay_model({"kind": "heterogeneous", "models": [
            {"kind": "constant", "delay": 2.0},
            {"kind": "constant", "delay": 5.0}]})
        assert isinstance(nested, HeterogeneousDelay)
        assert nested.sample(1, 0.0) == 5.0
        with pytest.raises(ValueError):
            make_delay_model({"kind": "warp"})

    def test_factory_name_needing_parameters_fails_clearly(self):
        # "trace" is registered but unbuildable without a payload; the
        # name-only route must surface that, not an attribute error
        with pytest.raises(ValueError, match="trace"):
            make_delay_model("trace")

    def test_trace_lanes_alias_when_workers_exceed_lanes(self):
        """Workers beyond the recorded lanes alias onto
        ``worker % lanes`` and *share that lane's cursor* — replay
        consumes each recorded sequence once, in arrival order."""
        trace = {"workers": {"0": [1.0, 2.0], "1": [5.0]}}
        model = TraceReplayDelay(trace)
        assert model.sample(0, 0.0) == 1.0
        assert model.sample(2, 0.0) == 2.0  # continues lane 0's cursor
        assert model.sample(0, 0.0) == 1.0  # lane wrapped
        assert model.sample(3, 0.0) == 5.0  # lane 1 via worker 3
        # the shared cursor is checkpoint state
        restored = TraceReplayDelay(trace)
        restored.load_state_dict(model.state_dict())
        assert restored.sample(2, 0.0) == 2.0

    def test_trace_rejects_non_contiguous_worker_ids(self):
        """A gap in recorded worker ids would silently shift lanes onto
        the wrong workers, so it must fail loudly."""
        with pytest.raises(ValueError):
            TraceReplayDelay({"workers": {"0": [1.0], "2": [2.0]}})

    def test_trace_record_and_load(self, tmp_path):
        path = tmp_path / "trace.json"
        TraceReplayDelay.record({0: [1.5, 2.5], 1: [0.5]}, path)
        model = TraceReplayDelay.from_json(path)
        assert model.sample(0, 0.0) == 1.5
        assert model.sample(1, 0.0) == 0.5

    def test_trace_driven_run(self):
        model, loss_fn = make_problem()
        opt = SGD(model.parameters(), lr=0.05)
        trace = TraceReplayDelay({"workers": {"0": [1.0], "1": [1.0, 4.0]}})
        runtime = ClusterRuntime(model, opt, loss_fn, workers=2,
                                 delay_model=trace)
        runtime.run(reads=30)
        assert runtime.updates_done > 0
        # worker 1 is slower on average, so it commits fewer updates
        stats = runtime.worker_stats()
        assert stats[0]["applied"] > stats[1]["applied"]


class TestClusterMetrics:
    def run_cluster(self, workers=4, reads=60):
        model, loss_fn = make_problem()
        opt = SGD(model.parameters(), lr=0.05)
        runtime = ClusterRuntime(model, opt, loss_fn, workers=workers,
                                 delay_model=UniformDelay(0.5, 1.5, seed=4))
        runtime.run(reads=reads)
        return runtime

    def test_staleness_histogram_by_worker(self):
        runtime = self.run_cluster()
        hist = staleness_histogram(runtime.log)
        assert set(hist) <= set(range(4))
        total = sum(c for worker in hist.values() for c in worker.values())
        assert total == len(runtime.log.series("staleness"))

    def test_staleness_summary(self):
        runtime = self.run_cluster()
        summary = staleness_summary(runtime.log)
        assert summary["count"] > 0
        assert 0 <= summary["mean"] <= summary["max"]
        assert summary["median"] <= summary["p95"] <= summary["max"]

    def test_staleness_summary_empty_log(self):
        from repro.utils import TrainLog
        summary = staleness_summary(TrainLog())
        assert summary["count"] == 0
        assert np.isnan(summary["mean"])

    def test_event_timeline_summary(self):
        runtime = self.run_cluster(reads=30)
        summary = event_timeline_summary(runtime.timeline)
        assert summary["events"] > 0
        assert summary["by_kind"]["arrival"] >= runtime.updates_done
        assert summary["span"][1] >= summary["span"][0]
        per_worker = summary["arrivals_per_worker"]
        assert sum(per_worker.values()) == summary["by_kind"]["arrival"]
