"""New functional ops, Dropout module, YF Nesterov mode, sensitivity."""

import numpy as np
import pytest

from repro import nn
from repro.analysis.sensitivity import lr_sensitivity, robustness_gain
from repro.autograd import Tensor
from repro.autograd import functional as F
from repro.autograd.grad_check import check_gradients
from repro.core import YellowFin


def t(shape, seed=0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestNewFunctionalOps:
    def test_leaky_relu_values(self):
        x = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        out = F.leaky_relu(x, 0.1)
        np.testing.assert_allclose(out.data, [-0.2, 3.0])

    def test_leaky_relu_grad(self):
        x = t((10,))
        x.data += np.sign(x.data) * 0.05
        check_gradients(lambda a: F.leaky_relu(a, 0.2), [x])

    def test_softplus_grad_and_stability(self):
        check_gradients(lambda a: F.softplus(a), [t((6,))])
        big = F.softplus(Tensor(np.array([1000.0]), requires_grad=True))
        assert np.isfinite(big.data).all()
        np.testing.assert_allclose(big.data, [1000.0], rtol=1e-9)

    def test_gelu_grad(self):
        check_gradients(lambda a: F.gelu(a), [t((8,))], atol=1e-4)

    def test_gelu_limits(self):
        out = F.gelu(Tensor(np.array([-20.0, 0.0, 20.0])))
        np.testing.assert_allclose(out.data, [0.0, 0.0, 20.0], atol=1e-6)

    def test_pad2d(self):
        x = t((2, 3, 4, 4))
        out = F.pad2d(x, 2)
        assert out.shape == (2, 3, 8, 8)
        check_gradients(lambda a: F.pad2d(a, 1), [t((1, 2, 3, 3))])
        assert F.pad2d(x, 0) is x
        with pytest.raises(ValueError):
            F.pad2d(x, -1)

    def test_split(self):
        x = t((6, 4))
        parts = F.split(x, 3, axis=0)
        assert len(parts) == 3 and parts[0].shape == (2, 4)
        total = sum((p.sum() for p in parts), Tensor(0.0))
        total.backward()
        np.testing.assert_allclose(x.grad, np.ones((6, 4)))
        with pytest.raises(ValueError):
            F.split(x, 4, axis=0)


class TestDropoutModule:
    def test_eval_identity(self):
        layer = nn.Dropout(0.5, seed=0)
        layer.eval()
        x = t((4, 4))
        assert layer(x) is x

    def test_train_zeroes_fraction(self):
        layer = nn.Dropout(0.5, seed=0)
        x = Tensor(np.ones((100, 100)), requires_grad=True)
        out = layer(x)
        zero_frac = float((out.data == 0).mean())
        assert 0.4 < zero_frac < 0.6

    def test_validation(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)

    def test_registered_in_sequential(self):
        net = nn.Sequential(nn.Linear(3, 3, seed=0), nn.Dropout(0.2, seed=1))
        net.eval()
        assert all(not m.training for m in net.modules())


class TestYellowFinNesterov:
    def test_nesterov_differs_and_converges(self):
        h = np.array([1.0, 2.0])

        def run(nesterov):
            p = Tensor(np.ones(2), requires_grad=True)
            opt = YellowFin([p], beta=0.99, nesterov=nesterov)
            best = np.inf
            for _ in range(400):
                p.grad = h * p.data
                opt.step()
                best = min(best, float(np.abs(p.data).max()))
            return best, p.data.copy()

        best_nest, x_nest = run(True)
        best_polyak, x_polyak = run(False)
        assert best_nest < 1e-2 and best_polyak < 1e-2
        assert not np.allclose(x_nest, x_polyak)


class TestSensitivity:
    def test_gd_rate_matches_theory(self):
        """mu = 0 on quadratic: fitted rate equals |1 - lr h|."""
        curve = lr_sensitivity(curvature=2.0, momentum=0.0,
                               lrs=[0.1, 0.25, 0.4], steps=100)
        np.testing.assert_allclose(curve.rates,
                                   [abs(1 - 0.2), abs(1 - 0.5),
                                    abs(1 - 0.8)], atol=1e-6)

    def test_divergent_lr_flagged(self):
        curve = lr_sensitivity(curvature=1.0, momentum=0.0, lrs=[5.0],
                               steps=50)
        assert np.isinf(curve.rates[0])

    def test_higher_momentum_widens_working_band(self):
        """The paper's robustness claim, measured: the band of good
        learning rates is wider at mu = 0.5 than at mu = 0."""
        gain = robustness_gain(curvature=1.0, low_momentum=0.0,
                               high_momentum=0.5, steps=300)
        assert gain > 0.2  # at least a fifth of a decade wider

    def test_working_band_empty_when_nothing_converges(self):
        curve = lr_sensitivity(curvature=1.0, momentum=0.0,
                               lrs=[10.0, 20.0], steps=50)
        assert curve.working_band == 0.0
