"""Parameter-server simulation: staleness semantics and training."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, functional as F
from repro.optim import MomentumSGD, SGD
from repro.sim import ParameterServer


def make_shards(n_workers, samples_per_shard=32, seed=0):
    """Independent data shards of the same underlying problem."""
    rng = np.random.default_rng(seed)
    model = nn.Sequential(nn.Linear(3, 8, seed=0), nn.ReLU(),
                          nn.Linear(8, 2, seed=1))
    loss_fns = []
    for w in range(n_workers):
        x = rng.normal(size=(samples_per_shard, 3))
        y = (x[:, 0] > 0).astype(int)
        local_rng = np.random.default_rng(seed + 100 + w)

        def loss_fn(x=x, y=y, local_rng=local_rng):
            idx = local_rng.integers(0, len(x), size=8)
            return F.cross_entropy(model(Tensor(x[idx])), y[idx])

        loss_fns.append(loss_fn)
    return model, loss_fns


class TestStalenessSemantics:
    def test_round_robin_staleness_is_workers_minus_one(self):
        model, loss_fns = make_shards(4)
        opt = SGD(model.parameters(), lr=0.05)
        server = ParameterServer(model, opt, loss_fns,
                                 schedule="round_robin")
        log = server.run(steps=40)
        staleness = log.series("staleness")
        # after warm-up every applied gradient is exactly 3 steps stale
        np.testing.assert_allclose(staleness[4:], 3.0)

    def test_single_worker_is_fresh(self):
        model, loss_fns = make_shards(1)
        opt = SGD(model.parameters(), lr=0.05)
        server = ParameterServer(model, opt, loss_fns)
        log = server.run(steps=20)
        np.testing.assert_allclose(log.series("staleness"), 0.0)

    def test_random_schedule_mixes_workers(self):
        model, loss_fns = make_shards(4)
        opt = SGD(model.parameters(), lr=0.05)
        server = ParameterServer(model, opt, loss_fns, schedule="random",
                                 seed=0)
        log = server.run(steps=80)
        workers_seen = set(log.series("worker").astype(int).tolist())
        assert workers_seen == {0, 1, 2, 3}
        # staleness varies under the memoryless schedule
        assert log.series("staleness")[8:].std() > 0.1

    def test_round_robin_cycles_workers(self):
        model, loss_fns = make_shards(3)
        opt = SGD(model.parameters(), lr=0.05)
        server = ParameterServer(model, opt, loss_fns)
        log = server.run(steps=9)
        np.testing.assert_array_equal(
            log.series("worker").astype(int), [0, 1, 2] * 3)


class TestTraining:
    def test_async_sharded_training_converges(self):
        model, loss_fns = make_shards(4, samples_per_shard=64)
        opt = MomentumSGD(model.parameters(), lr=0.05, momentum=0.3)
        server = ParameterServer(model, opt, loss_fns)
        log = server.run(steps=300)
        losses = log.series("loss")
        assert losses[-30:].mean() < 0.6 * losses[:30].mean()

    def test_divergence_stops(self):
        model, loss_fns = make_shards(2)
        opt = SGD(model.parameters(), lr=1e9)
        server = ParameterServer(model, opt, loss_fns)
        log = server.run(steps=100)
        assert "diverged" in log
        assert server.step_count < 100

    def test_validation(self):
        model, loss_fns = make_shards(2)
        opt = SGD(model.parameters(), lr=0.1)
        with pytest.raises(ValueError):
            ParameterServer(model, opt, [])
        with pytest.raises(ValueError):
            ParameterServer(model, opt, loss_fns, schedule="fifo")

    def test_mean_staleness_property(self):
        model, loss_fns = make_shards(5)
        opt = SGD(model.parameters(), lr=0.1)
        assert ParameterServer(model, opt, loss_fns).mean_staleness == 4.0
