"""Utilities: RNG management and the training log."""

import numpy as np
import pytest

from repro.utils import TrainLog, new_rng, spawn_rngs
from repro.utils.rng import RngMixin


class TestRng:
    def test_new_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert new_rng(rng) is rng

    def test_new_rng_seeded_reproducible(self):
        a = new_rng(42).random(5)
        b = new_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(0, 3)
        assert len(rngs) == 3
        draws = [rng.random() for rng in rngs]
        assert len(set(draws)) == 3

    def test_spawn_reproducible(self):
        a = [rng.random() for rng in spawn_rngs(7, 2)]
        b = [rng.random() for rng in spawn_rngs(7, 2)]
        assert a == b

    def test_mixin(self):
        class Thing(RngMixin):
            def __init__(self):
                self._init_rng(3)

        thing = Thing()
        assert isinstance(thing.rng, np.random.Generator)


class TestTrainLog:
    def test_append_and_series(self):
        log = TrainLog()
        log.append("loss", 1.0, 0)
        log.append("loss", 0.5, 1)
        np.testing.assert_allclose(log.series("loss"), [1.0, 0.5])
        assert log.steps["loss"] == [0, 1]

    def test_last(self):
        log = TrainLog()
        log.append("x", 3.0, 0)
        assert log.last("x") == 3.0
        with pytest.raises(KeyError):
            log.last("missing")

    def test_contains_and_len(self):
        log = TrainLog()
        assert "loss" not in log and len(log) == 0
        log.append("loss", 1.0, 0)
        log.append("loss", 2.0, 1)
        log.append("lr", 0.1, 0)
        assert "loss" in log and len(log) == 2

    def test_missing_series_empty(self):
        assert TrainLog().series("nope").size == 0
