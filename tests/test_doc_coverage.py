"""Documentation coverage gate for the public optimizer and sim APIs.

Fails whenever a public module, class, function, method, or property in
``repro.optim``, ``repro.sim``, ``repro.cluster``, ``repro.xp``,
``repro.vec``, ``repro.run``, ``repro.mp``, ``repro.obs``,
``repro.serve``, ``repro.fleet``, ``repro.lazy``, or
``repro.registry`` lacks a docstring, so API docs
cannot rot silently as those packages grow.
"""

import importlib
import inspect
import pkgutil

PACKAGES = ("repro.optim", "repro.sim", "repro.cluster", "repro.xp",
            "repro.vec", "repro.run", "repro.mp", "repro.obs",
            "repro.serve", "repro.fleet", "repro.lazy",
            "repro.registry")


def iter_modules():
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        yield pkg_name, pkg
        # plain modules (repro.registry) have no submodules to walk
        for info in pkgutil.iter_modules(getattr(pkg, "__path__", [])):
            if info.name.startswith("_"):
                continue
            name = f"{pkg_name}.{info.name}"
            yield name, importlib.import_module(name)


def iter_public_symbols():
    """Yield (qualified_name, object) for every public API symbol."""
    for mod_name, mod in iter_modules():
        for name, obj in vars(mod).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != mod.__name__:
                continue  # re-exports are checked where they are defined
            yield f"{mod_name}.{name}", obj
            if inspect.isclass(obj):
                for attr_name, attr in vars(obj).items():
                    if attr_name.startswith("_"):
                        continue
                    if inspect.isfunction(attr) or isinstance(
                            attr, (property, staticmethod, classmethod)):
                        yield f"{mod_name}.{name}.{attr_name}", attr


def has_doc(obj) -> bool:
    if isinstance(obj, property):
        obj = obj.fget
    if isinstance(obj, (staticmethod, classmethod)):
        obj = obj.__func__
    return bool(inspect.getdoc(obj))


def test_every_module_documented():
    missing = [name for name, mod in iter_modules() if not mod.__doc__]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_symbol_documented():
    missing = [name for name, obj in iter_public_symbols()
               if not has_doc(obj)]
    assert not missing, (
        f"{len(missing)} public symbols lack docstrings:\n  "
        + "\n  ".join(sorted(missing)))
