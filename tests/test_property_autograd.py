"""Property-based tests of autograd correctness on composite expressions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor
from repro.autograd.grad_check import check_gradients, numerical_grad

small_floats = st.floats(-3.0, 3.0, allow_nan=False)
shapes = st.sampled_from([(2,), (3, 2), (2, 2, 2)])


def tensor_from(data):
    return Tensor(np.asarray(data, dtype=np.float64), requires_grad=True)


class TestAlgebraicIdentities:
    @given(st.lists(small_floats, min_size=2, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_backward_is_linear_in_output_grad(self, values):
        """d(2f)/dx == 2 df/dx for any recorded graph."""
        x1 = tensor_from(values)
        (x1.tanh() * x1).sum().backward()
        g1 = x1.grad.copy()

        x2 = tensor_from(values)
        ((x2.tanh() * x2) * 2.0).sum().backward()
        np.testing.assert_allclose(x2.grad, 2.0 * g1, atol=1e-12)

    @given(st.lists(small_floats, min_size=2, max_size=6),
           st.lists(small_floats, min_size=2, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_sum_rule(self, a_vals, b_vals):
        """d(f+g)/dx == df/dx + dg/dx on shared input."""
        n = min(len(a_vals), len(b_vals))
        x = tensor_from(a_vals[:n])
        f = (x * x).sum()
        g = x.sigmoid().sum()
        (f + g).backward()
        combined = x.grad.copy()

        x1 = tensor_from(a_vals[:n])
        (x1 * x1).sum().backward()
        x2 = tensor_from(a_vals[:n])
        x2.sigmoid().sum().backward()
        np.testing.assert_allclose(combined, x1.grad + x2.grad, atol=1e-12)

    @given(shapes, st.integers(0, 10 ** 6))
    @settings(max_examples=30, deadline=None)
    def test_composite_matches_numeric(self, shape, seed):
        """Random smooth composite expression passes the numeric check."""
        rng = np.random.default_rng(seed)
        x = Tensor(rng.normal(size=shape), requires_grad=True)
        check_gradients(
            lambda a: ((a * 0.5).tanh() + a.sigmoid() * a).exp().mean(),
            [x], atol=1e-4, rtol=1e-3)

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=30, deadline=None)
    def test_matmul_chain_matches_numeric(self, seed):
        rng = np.random.default_rng(seed)
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        check_gradients(lambda a, b: ((a @ b).tanh() @ a).sum(),
                        [a, b], atol=1e-4, rtol=1e-3)


class TestGraphInvariants:
    @given(st.integers(1, 30))
    @settings(max_examples=20, deadline=None)
    def test_chain_of_multiplies(self, depth):
        """d/dx of c^depth * x is exactly c^depth for constant c."""
        x = Tensor([1.5], requires_grad=True)
        out = x
        for _ in range(depth):
            out = out * 0.9
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [0.9 ** depth], rtol=1e-12)

    @given(st.integers(2, 8))
    @settings(max_examples=20, deadline=None)
    def test_fan_out_accumulation(self, branches):
        """x used in k branches accumulates k gradient contributions."""
        x = Tensor([2.0], requires_grad=True)
        total = Tensor(0.0)
        for i in range(branches):
            total = total + x * float(i + 1)
        total.sum().backward()
        expected = sum(range(1, branches + 1))
        np.testing.assert_allclose(x.grad, [expected])
