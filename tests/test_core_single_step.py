"""The SingleStep rule: closed-form solution vs. brute force, properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.single_step import (cubic_root, robust_momentum_floor,
                                    single_step)

positive = st.floats(1e-6, 1e6)


def brute_force_x(dist, variance, hmin, grid=200001):
    """Numerically minimize x^2 D^2 + (1-x)^4 C / hmin^2 on [0, 1)."""
    x = np.linspace(0.0, 1.0 - 1e-9, grid)
    obj = x ** 2 * dist ** 2 + (1 - x) ** 4 * variance / hmin ** 2
    return float(x[np.argmin(obj)])


class TestCubicRoot:
    @pytest.mark.parametrize("dist,var,hmin", [
        (1.0, 1.0, 1.0),
        (10.0, 0.1, 2.0),
        (0.01, 100.0, 0.5),
        (5.0, 5.0, 0.001),
        (1e3, 1e-3, 10.0),
    ])
    def test_matches_brute_force(self, dist, var, hmin):
        exact = cubic_root(dist, var, hmin)
        approx = brute_force_x(dist, var, hmin)
        assert exact == pytest.approx(approx, abs=2e-5)

    @given(positive, positive, positive)
    @settings(max_examples=100, deadline=None)
    def test_root_in_unit_interval(self, dist, var, hmin):
        x = cubic_root(dist, var, hmin)
        assert 0.0 <= x < 1.0

    @given(positive, positive, positive)
    @settings(max_examples=100, deadline=None)
    def test_stationarity(self, dist, var, hmin):
        """Property: the returned x satisfies p'(x) = 0 (scaled residual)."""
        x = cubic_root(dist, var, hmin)
        if x <= 0.0 or x >= 1.0 - 1e-9:
            return  # boundary solutions from degenerate inputs
        deriv = 2 * x * dist ** 2 - 4 * (1 - x) ** 3 * var / hmin ** 2
        scale = 2 * dist ** 2 + 4 * var / hmin ** 2
        assert abs(deriv) / scale < 1e-6

    def test_degenerate_zero_variance(self):
        assert cubic_root(1.0, 0.0, 1.0) == 0.0

    def test_degenerate_zero_distance(self):
        assert cubic_root(0.0, 1.0, 1.0) == 0.0

    def test_noise_dominates_pushes_momentum_up(self):
        """More gradient noise relative to distance => larger x (= sqrt mu):
        the tuner leans on momentum instead of learning rate."""
        low_noise = cubic_root(1.0, 0.01, 1.0)
        high_noise = cubic_root(1.0, 100.0, 1.0)
        assert high_noise > low_noise


class TestRobustFloor:
    def test_kappa_one_gives_zero(self):
        assert robust_momentum_floor(3.0, 3.0) == pytest.approx(0.0)

    def test_matches_paper_formula(self):
        kappa = 1000.0
        expected = ((np.sqrt(kappa) - 1) / (np.sqrt(kappa) + 1)) ** 2
        assert robust_momentum_floor(1000.0, 1.0) == pytest.approx(expected)

    @given(positive, st.floats(1.0, 1e6))
    @settings(max_examples=100, deadline=None)
    def test_floor_in_unit_interval(self, hmin, ratio):
        mu = robust_momentum_floor(hmin * ratio, hmin)
        assert 0.0 <= mu < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            robust_momentum_floor(1.0, 0.0)
        with pytest.raises(ValueError):
            robust_momentum_floor(1.0, 2.0)


class TestSingleStep:
    @given(positive, positive, positive, st.floats(1.0, 1e4))
    @settings(max_examples=200, deadline=None)
    def test_output_always_in_robust_region(self, var, dist, hmin, ratio):
        """Property (paper eq. 15): the returned (mu, lr) must satisfy
        (1-sqrt(mu))^2 <= lr*h <= (1+sqrt(mu))^2 for ALL h in [hmin, hmax]."""
        hmax = hmin * ratio
        result = single_step(var, dist, hmax, hmin)
        sqrt_mu = np.sqrt(result.mu)
        assert result.lr * hmin == pytest.approx((1 - sqrt_mu) ** 2, rel=1e-9)
        assert result.lr * hmax <= (1 + sqrt_mu) ** 2 * (1 + 1e-9)

    @given(positive, positive, positive, st.floats(1.0, 1e4))
    @settings(max_examples=200, deadline=None)
    def test_momentum_at_least_robust_floor(self, var, dist, hmin, ratio):
        hmax = hmin * ratio
        result = single_step(var, dist, hmax, hmin)
        assert result.mu >= result.mu_robust_floor - 1e-12
        assert 0.0 <= result.mu < 1.0
        assert result.lr > 0.0

    def test_well_conditioned_noiseless_gives_gd(self):
        """kappa = 1, no noise => mu = 0 and lr = 1/h (exact Newton step
        scale for a quadratic)."""
        result = single_step(variance=0.0, distance=1.0, hmax=2.0, hmin=2.0)
        assert result.mu == pytest.approx(0.0)
        assert result.lr == pytest.approx(0.5)

    def test_ill_conditioned_forces_momentum(self):
        result = single_step(variance=0.0, distance=1.0,
                             hmax=10000.0, hmin=1.0)
        expected = ((100.0 - 1) / (100.0 + 1)) ** 2
        assert result.mu == pytest.approx(expected)

    def test_objective_optimality_vs_grid(self):
        """The closed form must not be beaten by a grid search of the
        constrained objective."""
        var, dist, hmin, hmax = 2.0, 3.0, 0.5, 50.0
        result = single_step(var, dist, hmax, hmin)
        floor = result.mu_robust_floor

        def objective(mu):
            lr = (1 - np.sqrt(mu)) ** 2 / hmin
            return mu * dist ** 2 + lr ** 2 * var

        grid = np.linspace(floor, 1 - 1e-9, 100001)
        best = objective(grid).min()
        assert objective(result.mu) <= best + 1e-9
