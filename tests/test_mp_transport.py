"""Property tests for the multi-process transport stack.

Three layers, each with seeded-random coverage:

- the **codec** (:mod:`repro.mp.codec`): random message trees with
  every supported dtype, random shapes (0-d and empty included),
  non-finite floats, and both memory orders must round-trip bit for
  bit — *including* the C/Fortran layout, because downstream NumPy
  reductions traverse memory order and an ulp of drift breaks the mp
  backend's bit-identity oracle;
- the **transports** (:mod:`repro.mp.transport`): the same random
  trees shipped through a real TCP socket pair and through the
  shared-memory ring pair, with enough traffic to force ring
  wraparound;
- the **endpoints** (:mod:`repro.mp.endpoints`): derivations are
  deterministic per (key, pid, attempt), distinct across processes,
  and a squatted port / stale segment costs one retry, not a failure.
"""

import socket

import numpy as np
import pytest

from repro.mp.codec import decode_message, encode_message
from repro.mp.endpoints import (allocate_listener, allocate_shm,
                                derive_port, derive_shm_name)
from repro.mp.transport import (SharedMemoryTransport, SocketTransport,
                                TransportTimeout, shm_segment_size)

DTYPES = ("float64", "float32", "float16", "int64", "int32", "int16",
          "uint8", "bool")

TRIALS = 20


def random_array(rng):
    """One random ndarray: any dtype, any small shape, any layout."""
    dtype = np.dtype(str(rng.choice(DTYPES)))
    ndim = int(rng.integers(0, 4))
    shape = tuple(int(rng.integers(0, 5)) for _ in range(ndim))
    if dtype.kind == "f":
        arr = rng.normal(size=shape).astype(dtype)
        # sprinkle non-finite values: they must survive bit-exactly
        if arr.size and rng.random() < 0.5:
            flat = arr.reshape(-1)
            for value in (np.nan, np.inf, -np.inf):
                flat[int(rng.integers(flat.size))] = value
    elif dtype.kind == "b":
        arr = rng.integers(0, 2, size=shape).astype(dtype)
    else:
        info = np.iinfo(dtype)
        arr = rng.integers(info.min, int(info.max) + 1,
                           size=shape, dtype=dtype)
    if arr.ndim > 1 and rng.random() < 0.5:
        arr = np.asfortranarray(arr)
    return arr


def random_tree(rng, depth=0):
    """A random message tree of dicts / lists / tuples with array leaves."""
    roll = rng.random()
    if depth >= 3 or roll < 0.45:
        # NumPy scalar leaves are excluded: the tagged state codec
        # canonicalizes them to Python scalars, as checkpoints do
        leaves = [None, True, 3, -1.5, float("nan"), "text"]
        if roll < 0.30:
            return random_array(rng)
        return leaves[int(rng.integers(len(leaves)))]
    children = [random_tree(rng, depth + 1)
                for _ in range(int(rng.integers(1, 4)))]
    if roll < 0.65:
        return {f"k{i}": child for i, child in enumerate(children)}
    if roll < 0.85:
        return children
    return tuple(children)


def assert_trees_equal(a, b):
    """Bit-exact structural equality (NaN == NaN, layouts preserved)."""
    assert type(a) is type(b), (type(a), type(b))
    if isinstance(a, np.ndarray):
        assert a.dtype == b.dtype
        assert a.shape == b.shape
        # tobytes() reads in logical (C) order: bit-exact values,
        # NaN payloads included, independent of memory layout ...
        assert a.tobytes() == b.tobytes()
        # ... and the memory layout itself must round-trip too
        assert a.flags.c_contiguous == b.flags.c_contiguous
        assert a.flags.f_contiguous == b.flags.f_contiguous
    elif isinstance(a, dict):
        assert set(a) == set(b)
        for key in a:
            assert_trees_equal(a[key], b[key])
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b)
        for left, right in zip(a, b):
            assert_trees_equal(left, right)
    elif isinstance(a, float) and np.isnan(a):
        assert np.isnan(b)
    else:
        assert a == b


# ----------------------------------------------------------------- #
# codec round-trips
# ----------------------------------------------------------------- #
class TestCodecRoundTrip:
    @pytest.mark.parametrize("trial", range(TRIALS))
    def test_random_trees_bit_exact(self, trial):
        rng = np.random.default_rng(1000 + trial)
        tree = {"payload": random_tree(rng), "trial": trial}
        assert_trees_equal(tree, decode_message(encode_message(tree)))

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_every_dtype_round_trips(self, dtype):
        data = np.arange(12).astype(dtype).reshape(3, 4)
        out = decode_message(encode_message({"a": data}))["a"]
        assert out.dtype == data.dtype
        assert out.tobytes() == data.tobytes()

    def test_fortran_order_preserved(self):
        # the load-bearing property: np.sum's pairwise summation
        # traverses memory order, so a gradient that leaves F-ordered
        # must arrive F-ordered or downstream sums drift by an ulp
        arr = np.asfortranarray(
            np.random.default_rng(3).normal(size=(8, 4)))
        out = decode_message(encode_message(arr))
        assert out.flags.f_contiguous and not out.flags.c_contiguous
        assert np.array_equal(out, arr)
        assert float(np.sum(out * out)) == float(np.sum(arr * arr))

    def test_non_finite_floats_bit_exact(self):
        arr = np.array([np.nan, np.inf, -np.inf, -0.0, 5e-324])
        out = decode_message(encode_message([arr]))[0]
        assert out.tobytes() == arr.tobytes()

    def test_empty_and_scalar_arrays(self):
        for arr in (np.array(3.5), np.zeros((0, 4)), np.zeros(0)):
            out = decode_message(encode_message((arr,)))[0]
            assert out.shape == arr.shape
            assert out.tobytes() == arr.tobytes()

    def test_decoded_arrays_are_writable_copies(self):
        arr = np.ones(4)
        out = decode_message(encode_message(arr))
        out[0] = 7.0  # must not raise: fresh writable memory
        assert arr[0] == 1.0

    def test_malformed_frames_rejected(self):
        frame = encode_message({"a": np.ones(3)})
        with pytest.raises(ValueError, match="magic"):
            decode_message(b"XXXX" + frame[4:])
        with pytest.raises(ValueError, match="truncated"):
            decode_message(frame[:-8])

    def test_buffer_tag_key_collision_rejected(self):
        with pytest.raises(ValueError, match="collides"):
            encode_message({"__buf__": 1})


# ----------------------------------------------------------------- #
# transport round-trips (both kinds, in-process endpoint pairs)
# ----------------------------------------------------------------- #
def socket_pair(key):
    listener, port = allocate_listener(key)
    client = socket.create_connection(("127.0.0.1", port), timeout=5.0)
    server, _ = listener.accept()
    listener.close()
    return SocketTransport(server), SocketTransport(client)


def shm_pair(key, capacity=1 << 14):
    segment = allocate_shm(key, shm_segment_size(capacity))
    parent = SharedMemoryTransport(segment, role="parent",
                                   ring_capacity=capacity,
                                   owns_segment=True)
    child = SharedMemoryTransport.attach(segment.name,
                                         ring_capacity=capacity)
    return parent, child


@pytest.fixture(params=["socket", "shm"])
def transport_pair(request):
    key = f"test_mp_transport/{request.node.name}"
    if request.param == "socket":
        a, b = socket_pair(key)
    else:
        a, b = shm_pair(key)
    yield a, b
    b.close()
    a.close()


class TestTransportRoundTrip:
    def test_random_trees_both_directions(self, transport_pair):
        a, b = transport_pair
        rng = np.random.default_rng(42)
        for trial in range(10):
            tree = {"t": trial, "body": random_tree(rng)}
            a.send(tree)
            assert_trees_equal(tree, b.recv(timeout=5.0))
            b.send(tree)
            assert_trees_equal(tree, a.recv(timeout=5.0))

    def test_queued_messages_keep_fifo_order(self, transport_pair):
        a, b = transport_pair
        for i in range(20):
            a.send({"seq": i})
        for i in range(20):
            assert b.recv(timeout=5.0)["seq"] == i

    def test_try_recv_is_non_blocking(self, transport_pair):
        a, b = transport_pair
        assert b.try_recv() is None
        a.send({"x": 1})
        message = None
        for _ in range(10000):
            message = b.try_recv()
            if message is not None:
                break
        assert message == {"x": 1}

    def test_recv_timeout_raises(self, transport_pair):
        _, b = transport_pair
        with pytest.raises(TransportTimeout):
            b.recv(timeout=0.05)


def test_shm_ring_wraparound():
    # cumulative traffic far beyond the ring capacity forces the
    # copy-in/copy-out wraparound paths on both rings
    parent, child = shm_pair("test_mp_transport/wrap", capacity=1 << 12)
    try:
        payload = np.arange(64, dtype=np.float64)  # ~512B per frame
        for i in range(64):
            parent.send({"i": i, "data": payload + i})
            out = child.recv(timeout=5.0)
            assert out["i"] == i
            assert np.array_equal(out["data"], payload + i)
    finally:
        child.close()
        parent.close()


# ----------------------------------------------------------------- #
# endpoint derivation
# ----------------------------------------------------------------- #
class TestEndpoints:
    def test_derivations_deterministic(self):
        assert derive_port("k", 0, pid=123) == derive_port("k", 0, pid=123)
        assert derive_shm_name("k", 1, pid=9) == \
            derive_shm_name("k", 1, pid=9)

    def test_distinct_across_pids_attempts_and_keys(self):
        ports = {derive_port("k", attempt, pid=pid)
                 for attempt in range(4) for pid in (1, 2, 3)}
        assert len(ports) == 12
        assert derive_port("k1", 0, pid=5) != derive_port("k2", 0, pid=5)
        names = {derive_shm_name("k", attempt, pid=pid)
                 for attempt in range(4) for pid in (1, 2)}
        assert len(names) == 8

    def test_listener_retries_past_occupied_port(self):
        key = "test_mp_transport/occupied"
        squatter, port0 = allocate_listener(key)
        try:
            assert port0 == derive_port(key, 0)
            retried, port1 = allocate_listener(key)
            retried.close()
            assert port1 == derive_port(key, 1)
            assert port1 != port0
        finally:
            squatter.close()

    def test_shm_retries_past_existing_segment(self):
        key = "test_mp_transport/stale"
        stale = allocate_shm(key, 64)
        try:
            assert stale.name == derive_shm_name(key, 0)
            fresh = allocate_shm(key, 64)
            assert fresh.name == derive_shm_name(key, 1)
            fresh.close()
            fresh.unlink()
        finally:
            stale.close()
            stale.unlink()
