"""Seq2Seq coverage: the unstable ReLU decoder and aligned feeding."""

import numpy as np
import pytest

from repro.data import make_iwslt_like
from repro.data.translation import bleu_like
from repro.models import Seq2Seq
from repro.optim import MomentumSGD, SGD


class TestReluDecoder:
    def test_forward_shapes(self):
        model = Seq2Seq(vocab_size=9, embed_dim=6, hidden_size=10,
                        decoder_cell="rnn_relu", seed=0)
        src = np.zeros((5, 3), dtype=int)
        assert model(src, src).shape == (15, 9)

    def test_greedy_decode(self):
        model = Seq2Seq(vocab_size=9, embed_dim=6, hidden_size=10,
                        decoder_cell="rnn_relu", seed=0)
        out = model.greedy_decode(np.zeros((4, 2), dtype=int), length=4)
        assert out.shape == (4, 2)

    def test_gain_sets_identity_dominance(self):
        model = Seq2Seq(vocab_size=9, hidden_size=8,
                        decoder_cell="rnn_relu", gain=1.4, seed=0)
        diag = np.diag(model.decoder_rnn.weight_hh.data)
        assert diag.mean() > 1.0  # identity component dominates

    def test_unknown_cell_rejected(self):
        with pytest.raises(ValueError):
            Seq2Seq(vocab_size=5, decoder_cell="gru")

    def test_unstable_model_diverges_stable_model_does_not(self):
        """The Table 1 mechanism in miniature: the aggressive default
        optimizer overflows on the gain>1 model but not at gain=1."""
        np.seterr(over="ignore")

        def max_loss(gain, steps=120):
            data = make_iwslt_like(seed=0, train_size=64)
            model = Seq2Seq(vocab_size=data.vocab_size, embed_dim=8,
                            hidden_size=16, gain=gain,
                            decoder_cell="rnn_relu", seed=0)
            rng = np.random.default_rng(0)
            opt = MomentumSGD(model.parameters(), lr=0.25, momentum=0.99,
                              nesterov=True)
            worst = 0.0
            for _ in range(steps):
                idx = rng.integers(0, 64, size=4)
                model.zero_grad()
                loss = model.loss(data.src_train[idx].T,
                                  data.tgt_train[idx].T)
                loss.backward()
                value = float(loss.data)
                if not np.isfinite(value):
                    return np.inf
                worst = max(worst, value)
                if worst > 1e8:
                    break
                opt.step()
            return worst

        assert max_loss(1.4) > 1e6
        assert max_loss(1.0) < 100.0


class TestAlignedTask:
    def test_learnable_by_stable_model(self):
        """With aligned feeding, the permutation task is learnable: BLEU
        rises well above chance after brief training."""
        data = make_iwslt_like(seed=0, train_size=128)
        model = Seq2Seq(vocab_size=data.vocab_size, embed_dim=12,
                        hidden_size=24, seed=0)
        rng = np.random.default_rng(0)
        opt = MomentumSGD(model.parameters(), lr=0.5, momentum=0.9)
        for _ in range(300):
            idx = rng.integers(0, 128, size=8)
            model.zero_grad()
            loss = model.loss(data.src_train[idx].T, data.tgt_train[idx].T)
            loss.backward()
            opt.step()
        pred = model.greedy_decode(data.src_test[:32].T, data.seq_len)
        score = bleu_like(pred.T, data.tgt_test[:32])
        chance = 100.0 / data.vocab_size
        assert score > 3 * chance
