"""The gradient checker itself must catch wrong gradients."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.grad_check import check_gradients, numerical_grad
from repro.autograd.tensor import Tensor as T


class TestNumericalGrad:
    def test_matches_analytic_on_square(self):
        x = Tensor(np.array([1.0, -2.0, 3.0]), requires_grad=True)
        num = numerical_grad(lambda a: (a * a).sum(), [x], 0)
        np.testing.assert_allclose(num, 2 * x.data, atol=1e-6)

    def test_respects_index(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        b = Tensor(np.array([3.0]), requires_grad=True)
        num_b = numerical_grad(lambda a, b: (a * b).sum(), [a, b], 1)
        np.testing.assert_allclose(num_b, [2.0], atol=1e-6)


class TestCheckGradients:
    def test_passes_correct_op(self):
        x = Tensor(np.array([0.5, -0.3]), requires_grad=True)
        check_gradients(lambda a: a.tanh(), [x])

    def test_catches_wrong_backward(self):
        """An op with a deliberately wrong gradient must fail the check."""

        def buggy_double(x: Tensor) -> Tensor:
            # forward computes 2x but backward claims d/dx = 3
            return T._make(2.0 * x.data, [(x, lambda g: 3.0 * g)])

        x = Tensor(np.array([1.0]), requires_grad=True)
        with pytest.raises(AssertionError):
            check_gradients(buggy_double, [x])

    def test_skips_non_grad_inputs(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        const = Tensor(np.array([5.0]))  # no grad required
        check_gradients(lambda a, c: a * c, [x, const])
