"""Differential oracle: the simulator judges the real mp backend.

Two regimes, per the oracle contract (:mod:`repro.mp.oracle`):

- **Sequenced scheduling → bit identity.**  With the simulator's event
  schedule replayed on real worker processes, the record identity
  (metrics and every series element) must equal the simulator's *bit
  for bit* — across every fused optimizer, multiple shard counts, both
  transports, and under real fault injection (SIGKILLed worker
  processes respawned mid-run).
- **Free-running scheduling → statistical equivalence.**  With
  genuine OS-scheduled racing, trajectories are not reproducible; the
  oracle instead requires the free-running final-loss distribution to
  match the simulator's replicate distribution within combined 95%
  confidence bands.

The ``smoke``-named subset (plus the transport property tests) is the
``make mp-smoke`` gate; the full sweep runs in tier-1.
"""

import numpy as np
import pytest

from repro.mp import (assert_bit_identical, differential_check,
                      execute_scalar_mp, free_run, mp_available,
                      statistical_check)
from repro.run import run
from repro.xp import ScenarioSpec

pytestmark = pytest.mark.skipif(
    not mp_available(), reason="no fork/shared-memory support")

OPTIMIZER_PARAMS = {
    "sgd": {"lr": 0.05},
    "momentum_sgd": {"lr": 0.05, "momentum": 0.9, "fused": True},
    "adam": {"lr": 0.01, "fused": True},
    "adagrad": {"lr": 0.05, "fused": True},
    "rmsprop": {"lr": 0.01, "fused": True},
    "yellowfin": {"beta": 0.9, "window": 5, "fused": True},
    "closed_loop_yellowfin": {"beta": 0.9, "window": 5, "fused": True},
}


def mp_spec(**overrides):
    base = dict(
        name="mp_diff", workload="toy_classifier",
        workload_params={"samples": 64, "features": 4, "hidden": 8,
                         "batch_size": 16},
        optimizer="momentum_sgd",
        optimizer_params={"lr": 0.05, "momentum": 0.9, "fused": True},
        delay={"kind": "constant", "delay": 1.0},
        workers=3, num_shards=2, reads=24, seed=7, smooth=5)
    base.update(overrides)
    return ScenarioSpec(**base)


# ----------------------------------------------------------------- #
# bit identity under sequenced scheduling
# ----------------------------------------------------------------- #
class TestBitIdentity:
    @pytest.mark.parametrize("optimizer", sorted(OPTIMIZER_PARAMS))
    def test_every_fused_optimizer(self, optimizer):
        assert_bit_identical(mp_spec(
            optimizer=optimizer,
            optimizer_params=OPTIMIZER_PARAMS[optimizer]))

    @pytest.mark.parametrize("num_shards", [1, 2, 3])
    def test_shard_counts(self, num_shards):
        assert_bit_identical(mp_spec(num_shards=num_shards))

    def test_socket_transport(self):
        assert_bit_identical(mp_spec(), transport="socket")

    def test_stochastic_delays_and_random_delivery(self):
        assert_bit_identical(mp_spec(
            delay={"kind": "pareto", "alpha": 1.5, "scale": 0.5,
                   "seed": 3},
            delivery="random", queue_staleness=2))

    def test_quadratic_bowl_workload(self):
        assert_bit_identical(mp_spec(
            workload="quadratic_bowl",
            workload_params={"dim": 16, "noise_horizon": 32}))

    def test_differential_check_reports_first_difference(self):
        spec = mp_spec()
        report = differential_check(spec)
        assert report["match"] is True
        assert report["difference"] is None
        assert report["sim"]["metrics"] == report["mp"]["metrics"]

    def test_env_records_transport_but_identity_ignores_it(self):
        result = execute_scalar_mp(mp_spec(), transport="shm")
        assert result.env["mp_transport"] == "shm"
        assert result.env["mp_workers"] == 3
        assert "mp_transport" not in result.identity().get("env", {})


class TestBitIdentityUnderRealFaults:
    def test_scheduled_crash_kills_and_respawns_real_process(self):
        # the crash SIGKILLs a real PID; the respawned process must
        # resynchronize its loss stream and keep the trajectory
        # bit-identical to the simulated crash
        assert_bit_identical(mp_spec(
            reads=30,
            faults={"seed": 5, "scheduled": [
                {"kind": "crash", "worker": 1, "time": 4.0,
                 "downtime": 3.0}]}))

    def test_probabilistic_faults(self):
        assert_bit_identical(mp_spec(
            reads=30,
            faults={"seed": 11, "crash_prob": 0.08,
                    "crash_downtime": 2.0, "straggler_prob": 0.1,
                    "straggler_factor": 4.0}))


# ----------------------------------------------------------------- #
# smoke subset: `make mp-smoke` runs -k smoke
# ----------------------------------------------------------------- #
class TestSmoke:
    def test_smoke_bit_identity(self):
        for optimizer in ("momentum_sgd", "closed_loop_yellowfin"):
            for num_shards in (1, 2):
                assert_bit_identical(mp_spec(
                    optimizer=optimizer,
                    optimizer_params=OPTIMIZER_PARAMS[optimizer],
                    num_shards=num_shards))

    def test_smoke_free_running_produces_genuine_schedule(self):
        out = free_run(mp_spec(
            optimizer="sgd", optimizer_params={"lr": 0.05},
            reads=60, smooth=10), timeout=60.0)
        assert out["reads"] == 60
        assert out["updates"] == 60
        assert sum(out["worker_commits"]) == 60
        assert out["reads_per_sec"] > 0
        assert np.isfinite(out["final_loss"])
        assert out["mean_staleness"] >= 0.0


# ----------------------------------------------------------------- #
# statistical equivalence under free running
# ----------------------------------------------------------------- #
class TestStatisticalEquivalence:
    def test_free_running_matches_simulator_ci95(self):
        spec = ScenarioSpec(
            name="mp_stat", workload="toy_classifier",
            workload_params={"samples": 128, "features": 8,
                             "hidden": 16},
            optimizer="sgd", optimizer_params={"lr": 0.05},
            workers=3, reads=300, smooth=50, seed=9)
        out = statistical_check(spec, replicates=6)
        assert out["match"] is True, out
        # the bands themselves must be meaningful, not degenerate
        assert 0.0 < out["sim_ci95"] < abs(out["sim_mean"])
        assert 0.0 < out["mp_ci95"] < abs(out["mp_mean"])
        assert len(out["values"]) == 6


# ----------------------------------------------------------------- #
# backend plumbing: mp as a fifth repro.run backend
# ----------------------------------------------------------------- #
class TestMPBackendRegistration:
    def test_mp_identity_matches_serial_via_run(self):
        spec = mp_spec()
        mp_outcome = run(spec, backend="mp")
        serial = run(spec, backend="serial")
        assert mp_outcome.backend == "mp"
        assert mp_outcome.result.identity() == serial.result.identity()

    def test_auto_selection_never_picks_mp(self):
        outcome = run(mp_spec(), backend="auto")
        assert outcome.backend != "mp"

    def test_replicated_spec_aggregates_like_serial(self):
        spec = mp_spec(replicates=3, reads=16)
        mp_outcome = run(spec, backend="mp")
        serial = run(spec, backend="serial")
        assert mp_outcome.result.identity() == serial.result.identity()
        assert len(mp_outcome.result.replicate_metrics) == 3
