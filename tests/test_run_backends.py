"""Cross-backend equivalence: every backend, same bits.

The defining contract of :mod:`repro.run`: the deterministic identity
of a scenario's record — name, spec hash, metrics, series — is a
function of the spec alone, not of the execution backend.  One tiny
lockstep spec runs through all built-in backends (``serial``,
``cluster``, ``parallel``, ``vec`` with ``replicates=1`` through the
batched engine, and — where the platform supports it — ``mp`` on real
worker processes) and the identities must agree exactly; matrices
and replicated/non-lockstep specs get the same treatment on the
backends where the execution strategy genuinely differs.  Also pins
the committed ``BENCH_cluster_scenarios.json`` values through the new
API, so the consolidation provably changed no numbers.
"""

import json
from pathlib import Path

import pytest

from repro.mp import mp_available
from repro.run import run
from repro.xp import Matrix, ScenarioSpec

REPO_ROOT = Path(__file__).resolve().parent.parent
BACKENDS = ("serial", "cluster", "parallel", "vec") + (
    ("mp",) if mp_available() else ())


def lockstep_spec(**overrides):
    base = dict(name="xbackend", workload="quadratic_bowl",
                workload_params={"dim": 24, "noise_horizon": 32},
                optimizer="momentum_sgd",
                optimizer_params={"lr": 0.02, "momentum": 0.5},
                delay={"kind": "constant", "delay": 1.0},
                workers=3, reads=30, seed=11, smooth=5)
    base.update(overrides)
    return ScenarioSpec(**base)


class TestSingleSpecEquivalence:
    @pytest.fixture(scope="class")
    def outcomes(self):
        spec = lockstep_spec()
        return {name: run(spec, backend=name) for name in BACKENDS}

    def test_identities_bit_identical_across_backends(self, outcomes):
        reference = outcomes["serial"].result.identity()
        for name in BACKENDS:
            assert outcomes[name].result.identity() == reference, name

    def test_vec_actually_used_the_batched_engine(self, outcomes):
        # the equivalence above is only meaningful if the vec backend
        # really took the single-replicate batched path
        assert outcomes["vec"].result.env["vec_engine"] == "batched"
        for name in ("serial", "cluster", "parallel"):
            assert "vec_engine" not in outcomes[name].result.env

    def test_backend_recorded_on_result(self, outcomes):
        for name in BACKENDS:
            assert outcomes[name].backend == name
            assert outcomes[name].reason == "explicitly requested"


class TestMatrixEquivalence:
    def test_parallel_pool_matches_serial(self):
        matrix = Matrix(lockstep_spec(), axes={
            "lr": {"slow": {"optimizer_params.lr": 0.01},
                   "fast": {"optimizer_params.lr": 0.04}},
        })
        serial = run(matrix, backend="serial")
        # jobs=2 forces a real process pool for the two scenarios
        parallel = run(matrix, backend="parallel", jobs=2)
        assert serial.identities() == parallel.identities()

    def test_toy_classifier_workload_equivalent_on_vec(self):
        # no vectorized evaluator exists for this workload: the vec
        # backend runs the generic per-replicate adapter and must
        # still match the scalar engine exactly
        spec = lockstep_spec(
            workload="toy_classifier",
            workload_params={"samples": 64, "features": 4, "hidden": 8,
                             "batch_size": 16})
        assert run(spec, backend="vec").result.identity() == \
            run(spec, backend="serial").result.identity()


class TestNonLockstepFallback:
    def test_stochastic_delay_identical_via_vec_fallback(self):
        spec = lockstep_spec(
            delay={"kind": "uniform", "low": 0.5, "high": 1.5,
                   "seed": 5})
        vec = run(spec, backend="vec")
        assert vec.result.env["vec_engine"] == "serial"
        assert vec.result.identity() == \
            run(spec, backend="cluster").result.identity()

    def test_faulty_scenario_identical_on_every_backend(self):
        spec = lockstep_spec(
            faults={"seed": 9, "scheduled": [
                {"kind": "crash", "worker": 1, "time": 4.0,
                 "downtime": 3.0}]})
        reference = run(spec, backend="serial").result.identity()
        for name in ("cluster", "parallel", "vec"):
            assert run(spec, backend=name).result.identity() == \
                reference, name


class TestReplicatedEquivalence:
    def test_replicated_spec_identical_serial_vs_vec(self):
        spec = lockstep_spec(replicates=3)
        serial = run(spec, backend="serial")
        vec = run(spec, backend="vec")
        assert serial.result.env["vec_engine"] == "serial"
        assert vec.result.env["vec_engine"] == "batched"
        assert serial.result.identity() == vec.result.identity()

    def test_cluster_backend_keeps_batched_replicates(self):
        # cluster is the general backend, not the forced-serial
        # reference: a lockstep replicated spec routed to it (e.g. in
        # a mixed batch) must still get the batched fast path
        spec = lockstep_spec(replicates=3)
        cluster = run(spec, backend="cluster")
        assert cluster.result.env["vec_engine"] == "batched"
        assert cluster.result.identity() == \
            run(spec, backend="serial").result.identity()


class TestCommittedBaselinesReproduce:
    def test_bench_cluster_scenarios_unchanged_through_new_api(self):
        committed = json.loads(
            (REPO_ROOT / "BENCH_cluster_scenarios.json").read_text())
        base = dict(
            name="cluster_scenarios", workload="toy_classifier",
            workers=4, num_shards=2, reads=240, seed=0, smooth=25,
            delay={"kind": "constant", "delay": 1.0})
        fixed = ScenarioSpec(
            **base, optimizer="momentum_sgd",
            optimizer_params={"lr": 0.05, "momentum": 0.9,
                              "fused": True})
        for backend in BACKENDS:
            outcome = run(fixed, backend=backend)
            assert outcome.result.metrics["final_loss"] == \
                committed["metrics"]["constant_fixed_final"], backend
