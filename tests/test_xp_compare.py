"""BaselineComparator: direction-aware gating, env/params awareness."""

import json

import pytest

from repro.bench import BenchReporter
from repro.xp import BaselineComparator, MetricRule, write_report

ENV = {"python": "3.11.7", "numpy": "2.0.0", "platform": "linux",
       "machine": "x86_64", "bench_scale": 1.0}


def record(metrics, params=None, env=None, name="rec"):
    return {"name": name, "metrics": dict(metrics),
            "params": dict(params or {}), "env": dict(env or ENV),
            "unix_time": 0.0}


class TestDirections:
    def test_loss_increase_beyond_tol_fails(self):
        report = BaselineComparator().compare_records(
            record({"final_loss": 1.0}), record({"final_loss": 1.3}))
        assert report["status"] == "fail"
        (comp,) = report["comparisons"]
        assert comp["status"] == "regression"
        assert comp["rel_change"] == pytest.approx(0.3)

    def test_loss_within_tol_passes(self):
        report = BaselineComparator().compare_records(
            record({"final_loss": 1.0}), record({"final_loss": 1.15}))
        assert report["status"] == "pass"

    def test_loss_improvement_is_not_a_failure(self):
        report = BaselineComparator().compare_records(
            record({"final_loss": 1.0}), record({"final_loss": 0.5}))
        assert report["status"] == "pass"
        assert report["comparisons"][0]["status"] == "improved"

    def test_speedup_drop_fails(self):
        report = BaselineComparator().compare_records(
            record({"speedup": 2.6}), record({"speedup": 1.2}))
        assert report["status"] == "fail"

    def test_speedup_gain_passes(self):
        report = BaselineComparator().compare_records(
            record({"speedup": 2.6}), record({"speedup": 3.5}))
        assert report["status"] == "pass"

    def test_speedup_gates_across_environments(self):
        # dimensionless ratio: a fused-kernel regression must fail the
        # gate even when baseline and fresh ran on different machines
        other_env = dict(ENV, machine="arm64")
        report = BaselineComparator().compare_records(
            record({"speedup": 2.6}),
            record({"speedup": 1.0}, env=other_env))
        assert report["status"] == "fail"

    def test_nan_fresh_metric_fails_gate(self):
        report = BaselineComparator().compare_records(
            record({"final_loss": 1.0}),
            record({"final_loss": float("nan")}))
        assert report["status"] == "fail"
        assert report["comparisons"][0]["status"] == "regression"

    def test_nan_on_both_sides_passes(self):
        report = BaselineComparator().compare_records(
            record({"final_loss": float("nan")}),
            record({"final_loss": float("nan")}))
        assert report["status"] == "pass"

    def test_unmatched_metric_is_informational(self):
        report = BaselineComparator().compare_records(
            record({"some_count": 10.0}), record({"some_count": 400.0}))
        assert report["status"] == "pass"
        assert report["comparisons"][0]["status"] == "info"

    def test_diverged_flip_fails(self):
        report = BaselineComparator().compare_records(
            record({"diverged": 0.0}), record({"diverged": 1.0}))
        assert report["status"] == "fail"

    def test_missing_gated_metric_fails(self):
        report = BaselineComparator().compare_records(
            record({"final_loss": 1.0}), record({}))
        assert report["status"] == "fail"
        assert report["comparisons"][0]["status"] == "missing"

    def test_new_metric_reported_not_gated(self):
        report = BaselineComparator().compare_records(
            record({}), record({"final_loss": 9.0}))
        assert report["status"] == "pass"
        assert report["comparisons"][0]["status"] == "new"


class TestTolerances:
    def test_rel_tol_override(self):
        loose = BaselineComparator(rel_tol=0.5)
        report = loose.compare_records(
            record({"final_loss": 1.0}), record({"final_loss": 1.4}))
        assert report["status"] == "pass"

    def test_custom_rules(self):
        comparator = BaselineComparator(rules=[
            MetricRule("wobble", "two_sided", 0.01),
            MetricRule("*", "ignore")])
        report = comparator.compare_records(
            record({"wobble": 1.0, "other": 1.0}),
            record({"wobble": 1.05, "other": 99.0}))
        assert report["status"] == "fail"
        by_name = {c["metric"]: c for c in report["comparisons"]}
        assert by_name["wobble"]["status"] == "regression"
        assert by_name["other"]["status"] == "info"

    def test_negative_tol_rejected(self):
        with pytest.raises(ValueError):
            BaselineComparator(rel_tol=-0.1)

    def test_bad_gate_timings_rejected(self):
        with pytest.raises(ValueError):
            BaselineComparator(gate_timings="sometimes")


class TestReplicateStatisticsAwareness:
    """CI-aware gating over statistical (replicated) BENCH records."""

    def test_spread_fields_reported_not_gated(self):
        base = {"final_loss": 1.0, "final_loss_std": 0.2,
                "final_loss_ci95": 0.14, "replicates": 8.0}
        fresh = {"final_loss": 1.05, "final_loss_std": 0.9,
                 "final_loss_ci95": 0.62, "replicates": 8.0}
        report = BaselineComparator().compare_records(record(base),
                                                      record(fresh))
        assert report["status"] == "pass"
        by_metric = {c["metric"]: c for c in report["comparisons"]}
        assert not by_metric["final_loss_std"]["gated"]
        assert not by_metric["final_loss_ci95"]["gated"]
        assert not by_metric["replicates"]["gated"]

    def test_ci_widens_the_mean_tolerance(self):
        # +30% drift would fail the plain 20% gate, but the baseline's
        # CI half-width (0.15 on a mean of 1.0) widens it to 35%
        base = {"final_loss": 1.0, "final_loss_ci95": 0.15}
        fresh = {"final_loss": 1.3, "final_loss_ci95": 0.02}
        report = BaselineComparator().compare_records(record(base),
                                                      record(fresh))
        assert report["status"] == "pass"
        comp = {c["metric"]: c for c in report["comparisons"]}
        assert comp["final_loss"]["rel_tol"] == pytest.approx(0.35)

    def test_fresh_ci_also_widens(self):
        base = {"final_loss": 1.0}
        fresh = {"final_loss": 1.3, "final_loss_ci95": 0.2}
        report = BaselineComparator().compare_records(record(base),
                                                      record(fresh))
        assert report["status"] == "pass"

    def test_drift_beyond_mean_plus_ci_still_fails(self):
        base = {"final_loss": 1.0, "final_loss_ci95": 0.05}
        fresh = {"final_loss": 1.4, "final_loss_ci95": 0.05}
        report = BaselineComparator().compare_records(record(base),
                                                      record(fresh))
        assert report["status"] == "fail"

    def test_nonfinite_or_zero_baselines_do_not_widen(self):
        base = {"diverged": 0.0, "diverged_ci95": 5.0}
        fresh = {"diverged": 1.0, "diverged_ci95": 5.0}
        report = BaselineComparator().compare_records(record(base),
                                                      record(fresh))
        assert report["status"] == "fail"

    def test_reporter_replicate_records_pass_their_own_noise(self):
        reporter = BenchReporter()
        rec = reporter.record_replicates(
            "stat", [{"final_loss": 0.9}, {"final_loss": 1.1},
                     {"final_loss": 1.0}], params={"reads": 10})
        assert rec.metrics["final_loss"] == pytest.approx(1.0)
        assert rec.metrics["replicates"] == 3.0
        assert "final_loss_std" in rec.metrics
        report = BaselineComparator().compare_records(
            record(rec.metrics, params={"reads": 10}),
            record(rec.metrics, params={"reads": 10}))
        assert report["status"] == "pass"


class TestEnvironmentAwareness:
    def test_timing_regression_gates_on_matching_env(self):
        report = BaselineComparator().compare_records(
            record({"wall_s": 1.0}), record({"wall_s": 2.0}))
        assert report["status"] == "fail"

    def test_timing_regression_ignored_on_env_mismatch(self):
        other_env = dict(ENV, machine="arm64")
        report = BaselineComparator().compare_records(
            record({"wall_s": 1.0}), record({"wall_s": 2.0}, env=other_env))
        assert report["status"] == "pass"
        assert report["comparisons"][0]["status"] == "info"
        assert report["env_match"] is False
        assert any(d["key"] == "machine" for d in report["env_drift"])

    def test_deterministic_metric_gates_despite_env_mismatch(self):
        other_env = dict(ENV, machine="arm64")
        report = BaselineComparator().compare_records(
            record({"final_loss": 1.0}),
            record({"final_loss": 2.0}, env=other_env))
        assert report["status"] == "fail"

    def test_forced_timing_gate(self):
        other_env = dict(ENV, machine="arm64")
        report = BaselineComparator(gate_timings=True).compare_records(
            record({"wall_s": 1.0}), record({"wall_s": 2.0}, env=other_env))
        assert report["status"] == "fail"

    def test_missing_env_key_counts_as_drift(self):
        # pre-metadata baselines lack bench_scale: timing gate stays off
        old_env = {k: v for k, v in ENV.items() if k != "bench_scale"}
        report = BaselineComparator().compare_records(
            record({"wall_s": 1.0}, env=old_env),
            record({"wall_s": 5.0}))
        assert report["status"] == "pass"


class TestParamsAwareness:
    def test_changed_params_make_pair_incomparable(self):
        report = BaselineComparator().compare_records(
            record({"final_loss": 1.0}, params={"reads": 240}),
            record({"final_loss": 9.0}, params={"reads": 60}))
        assert report["status"] == "incomparable"
        assert "reads" in report["reason"]
        assert report["comparisons"] == []

    def test_added_param_is_drift_not_blocker(self):
        report = BaselineComparator().compare_records(
            record({"final_loss": 1.0}, params={}),
            record({"final_loss": 1.0}, params={"seed": 0}))
        assert report["status"] == "pass"
        assert report["params_drift"][0]["kind"] == "fresh_only"


class TestCompareDirs:
    def write(self, directory, name, metrics, scale="1.0", params=None):
        directory.mkdir(parents=True, exist_ok=True)
        import os
        old = os.environ.get("REPRO_BENCH_SCALE")
        os.environ["REPRO_BENCH_SCALE"] = scale
        try:
            reporter = BenchReporter(out_dir=str(directory))
            reporter.record(name, metrics, params or {"knob": 1})
            reporter.write(name)
        finally:
            if old is None:
                os.environ.pop("REPRO_BENCH_SCALE", None)
            else:
                os.environ["REPRO_BENCH_SCALE"] = old

    def test_pass_and_report_round_trip(self, tmp_path):
        base, fresh = tmp_path / "base", tmp_path / "fresh"
        self.write(base, "suite", {"final_loss": 1.0})
        self.write(fresh, "suite", {"final_loss": 1.05})
        report = BaselineComparator().compare_dirs(base, fresh)
        assert report["status"] == "pass"
        assert report["summary"]["compared"] == 1
        out = tmp_path / "report.json"
        write_report(report, out)
        assert json.loads(out.read_text())["status"] == "pass"

    def test_regression_fails_with_named_failure(self, tmp_path):
        base, fresh = tmp_path / "base", tmp_path / "fresh"
        self.write(base, "suite", {"final_loss": 1.0})
        self.write(fresh, "suite", {"final_loss": 2.0})
        report = BaselineComparator().compare_dirs(base, fresh)
        assert report["status"] == "fail"
        assert any("final_loss" in f for f in report["failures"])

    def test_named_record_missing_on_fresh_side_fails(self, tmp_path):
        base, fresh = tmp_path / "base", tmp_path / "fresh"
        self.write(base, "suite", {"final_loss": 1.0})
        fresh.mkdir()
        report = BaselineComparator().compare_dirs(base, fresh,
                                                   names=["suite"])
        assert report["status"] == "fail"

    def test_named_incomparable_record_fails_gate(self, tmp_path):
        # params drifted without a baseline regen: an explicitly gated
        # record must fail rather than leave the gate silently green
        base, fresh = tmp_path / "base", tmp_path / "fresh"
        self.write(base, "suite", {"final_loss": 1.0},
                   params={"reads": 240})
        self.write(fresh, "suite", {"final_loss": 1.0},
                   params={"reads": 60})
        report = BaselineComparator().compare_dirs(base, fresh,
                                                   names=["suite"])
        assert report["status"] == "fail"
        assert any("incomparable" in f for f in report["failures"])
        # ... but unnamed intersection mode only reports it
        report = BaselineComparator().compare_dirs(base, fresh)
        assert report["status"] == "pass"
        assert report["records"][0]["status"] == "incomparable"

    def test_unnamed_compare_uses_intersection(self, tmp_path):
        base, fresh = tmp_path / "base", tmp_path / "fresh"
        self.write(base, "only_base", {"final_loss": 1.0})
        self.write(base, "both", {"final_loss": 1.0})
        self.write(fresh, "both", {"final_loss": 1.0})
        self.write(fresh, "only_fresh", {"final_loss": 1.0})
        report = BaselineComparator().compare_dirs(base, fresh)
        assert report["summary"]["compared"] == 1
        assert report["records"][0]["name"] == "both"

    def test_scale_mismatch_is_visible_as_env_drift(self, tmp_path):
        base, fresh = tmp_path / "base", tmp_path / "fresh"
        self.write(base, "suite", {"wall_s": 1.0}, scale="1.0")
        self.write(fresh, "suite", {"wall_s": 9.0}, scale="0.25")
        report = BaselineComparator().compare_dirs(base, fresh)
        (rec,) = report["records"]
        assert rec["env_match"] is False
        assert any(d["key"] == "bench_scale" for d in rec["env_drift"])
