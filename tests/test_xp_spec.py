"""ScenarioSpec / Matrix: hashing, round trips, expansion, validation."""

import json

import pytest

from repro.xp import (Matrix, ScenarioSpec, load_scenarios, save_scenarios,
                      build_delay_model, build_fault_injector)
from repro.cluster import (ConstantDelay, HeterogeneousDelay, ParetoDelay,
                           TraceReplayDelay, UniformDelay)


def spec(**overrides):
    fields = dict(name="s", reads=40, seed=0)
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestSpecIdentity:
    def test_hash_is_stable_across_instances(self):
        assert spec().content_hash() == spec().content_hash()

    def test_hash_changes_with_any_field(self):
        base = spec().content_hash()
        assert spec(reads=41).content_hash() != base
        assert spec(seed=1).content_hash() != base
        assert spec(optimizer_params={"lr": 0.1}).content_hash() != base
        assert spec(delay={"kind": "pareto"}).content_hash() != base

    def test_hash_ignores_dict_key_order(self):
        a = spec(optimizer_params={"lr": 0.1, "momentum": 0.9})
        b = spec(optimizer_params={"momentum": 0.9, "lr": 0.1})
        assert a.content_hash() == b.content_hash()

    def test_record_series_list_vs_tuple_hash_equal(self):
        a = spec(record_series=("loss", "staleness"))
        b = spec(record_series=["loss", "staleness"])
        assert a.content_hash() == b.content_hash()

    def test_dict_round_trip_preserves_hash(self):
        s = spec(delay={"kind": "uniform", "low": 0.5, "high": 1.5,
                        "seed": 3},
                 faults={"crash_prob": 0.01, "seed": 7})
        clone = ScenarioSpec.from_dict(s.as_dict())
        assert clone == s
        assert clone.content_hash() == s.content_hash()

    def test_json_round_trip_preserves_hash(self, tmp_path):
        s = spec(delay={"kind": "trace",
                        "trace": {"delays": [1.0, 2.0, 0.5]}})
        path = tmp_path / "specs.json"
        save_scenarios([s], path)
        loaded, = load_scenarios(path)
        assert loaded == s
        assert loaded.content_hash() == s.content_hash()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown ScenarioSpec"):
            ScenarioSpec.from_dict({"name": "s", "typo_field": 1})

    def test_newer_format_version_rejected(self, tmp_path):
        path = tmp_path / "specs.json"
        save_scenarios([spec()], path)
        payload = json.loads(path.read_text())
        payload["xp_format"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="xp_format 99"):
            load_scenarios(path)


class TestSeeding:
    def test_explicit_seed_passes_through(self):
        assert spec(seed=123).resolved_seed() == 123

    def test_derived_seed_is_deterministic(self):
        a = spec(seed=None)
        b = spec(seed=None)
        assert a.resolved_seed() == b.resolved_seed()

    def test_derived_seeds_differ_across_scenarios(self):
        a = ScenarioSpec(name="a", reads=40)
        b = ScenarioSpec(name="b", reads=40)
        assert a.resolved_seed() != b.resolved_seed()


class TestValidation:
    @pytest.mark.parametrize("overrides", [
        {"workers": 0}, {"num_shards": 0}, {"reads": -1},
        {"updates": -1}, {"queue_staleness": -1}, {"smooth": 0},
        {"delivery": "lifo"}, {"delay": {"no_kind": 1}},
        {"name": ""},
    ])
    def test_bad_fields_rejected(self, overrides):
        with pytest.raises(ValueError):
            spec(**overrides)


class TestMatrix:
    def make(self):
        return Matrix(
            base=spec(),
            axes={
                "delay": {
                    "const": {"delay": {"kind": "constant", "delay": 1.0}},
                    "pareto": {"delay": {"kind": "pareto", "seed": 5}},
                },
                "gamma": {
                    "g01": {"optimizer_params.gamma": 0.01},
                    "g10": {"optimizer_params.gamma": 0.1},
                },
            })

    def test_expansion_is_full_cross_product(self):
        specs = self.make().expand()
        assert [s.name for s in specs] == [
            "s/const/g01", "s/const/g10", "s/pareto/g01", "s/pareto/g10"]
        assert len({s.content_hash() for s in specs}) == 4

    def test_labels_align_with_expansion(self):
        matrix = self.make()
        labels = matrix.labels()
        assert labels[0] == ("const", "g01")
        assert len(labels) == len(matrix.expand())

    def test_dotted_override_reaches_nested_param(self):
        specs = self.make().expand()
        assert specs[0].optimizer_params["gamma"] == 0.01
        assert specs[1].optimizer_params["gamma"] == 0.1

    def test_base_is_not_mutated_by_expansion(self):
        matrix = self.make()
        matrix.expand()
        assert matrix.base.optimizer_params == {}
        assert matrix.base.delay == {"kind": "constant", "delay": 1.0}

    def test_override_must_start_with_spec_field(self):
        matrix = Matrix(base=spec(),
                        axes={"a": {"x": {"not_a_field.y": 1}}})
        with pytest.raises(ValueError, match="not_a_field"):
            matrix.expand()

    def test_matrix_file_round_trip(self, tmp_path):
        matrix = self.make()
        path = tmp_path / "matrix.json"
        save_scenarios(matrix, path)
        loaded = load_scenarios(path)
        assert [s.content_hash() for s in loaded] == \
            [s.content_hash() for s in matrix.expand()]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Matrix(base=spec(), axes={"a": {}})


class TestFactories:
    def test_delay_kinds_build(self):
        assert isinstance(
            build_delay_model({"kind": "constant", "delay": 2.0}),
            ConstantDelay)
        assert isinstance(
            build_delay_model({"kind": "uniform", "low": 0.5, "high": 1.0,
                               "seed": 1}), UniformDelay)
        assert isinstance(
            build_delay_model({"kind": "pareto", "seed": 2}), ParetoDelay)
        het = build_delay_model(
            {"kind": "heterogeneous",
             "models": [{"kind": "constant", "delay": 1.0},
                        {"kind": "pareto", "seed": 3}]})
        assert isinstance(het, HeterogeneousDelay)
        assert isinstance(het.models[1], ParetoDelay)
        trace = build_delay_model(
            {"kind": "trace", "trace": {"delays": [1.0, 2.0]}})
        assert isinstance(trace, TraceReplayDelay)

    def test_unknown_delay_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown delay kind"):
            build_delay_model({"kind": "warp"})

    def test_fault_config_builds_scheduled_list(self):
        injector = build_fault_injector({
            "crash_prob": 0.01, "seed": 4,
            "scheduled": [
                {"kind": "crash", "worker": 0, "time": 3.0,
                 "downtime": 2.0},
                {"kind": "straggler", "worker": 1, "start": 1.0,
                 "duration": 4.0, "factor": 5.0},
                {"kind": "pause", "start": 2.0, "duration": 1.0},
            ]})
        assert injector.crash_prob == 0.01
        assert len(injector.scheduled) == 3

    def test_empty_fault_config_is_none(self):
        assert build_fault_injector({}) is None
        assert build_fault_injector(None) is None

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduled fault"):
            build_fault_injector({"scheduled": [{"kind": "meteor"}]})
