"""Weight decay, random staleness, random search, serialization, ablation
toggles, and the RNNCell."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, functional as F
from repro.core import YellowFin
from repro.core.ema import ZeroDebiasEMA
from repro.core.measurements import CurvatureRange
from repro.optim import MomentumSGD, SGD
from repro.sim import train_async
from repro.tuning import (Workload, log_uniform, random_search,
                          run_workload)
from repro.utils import (load_results, load_train_log, save_results,
                         save_train_log)
from repro.utils.logging import TrainLog


class TestWeightDecay:
    def test_sgd_decays_toward_zero(self):
        p = Tensor(np.array([10.0]), requires_grad=True)
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        for _ in range(50):
            p.grad = np.zeros(1)  # no data gradient: pure decay
            opt.step()
        assert abs(p.data[0]) < 1.0

    def test_momentum_sgd_matches_explicit_l2(self):
        rng = np.random.default_rng(0)
        grads = rng.normal(size=(20, 3))

        p1 = Tensor(np.ones(3), requires_grad=True)
        opt1 = MomentumSGD([p1], lr=0.1, momentum=0.5, weight_decay=0.01)
        p2 = Tensor(np.ones(3), requires_grad=True)
        opt2 = MomentumSGD([p2], lr=0.1, momentum=0.5)
        for g in grads:
            p1.grad = g.copy()
            opt1.step()
            p2.grad = g + 0.01 * p2.data  # explicit L2 gradient
            opt2.step()
        np.testing.assert_allclose(p1.data, p2.data, atol=1e-12)

    def test_zero_decay_is_default(self):
        p = Tensor(np.ones(2), requires_grad=True)
        assert SGD([p], lr=0.1).weight_decay == 0.0


class TestRandomStaleness:
    def _problem(self, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(32, 3))
        y = (x[:, 0] > 0).astype(int)
        model = nn.Sequential(nn.Linear(3, 8, seed=0), nn.ReLU(),
                              nn.Linear(8, 2, seed=1))
        return model, lambda: F.cross_entropy(model(Tensor(x)), y)

    def test_random_model_trains(self):
        model, loss_fn = self._problem()
        opt = MomentumSGD(model.parameters(), lr=0.05, momentum=0.3)
        log = train_async(model, opt, loss_fn, steps=150, workers=4,
                          staleness_model="random", seed=0)
        losses = log.series("loss")
        assert losses[-1] < losses[0]

    def test_random_model_is_seeded(self):
        outs = []
        for _ in range(2):
            model, loss_fn = self._problem()
            opt = SGD(model.parameters(), lr=0.1)
            log = train_async(model, opt, loss_fn, steps=40, workers=4,
                              staleness_model="random", seed=7)
            outs.append(log.series("loss"))
        np.testing.assert_allclose(outs[0], outs[1])

    def test_unknown_model_rejected(self):
        model, loss_fn = self._problem()
        opt = SGD(model.parameters(), lr=0.1)
        with pytest.raises(ValueError):
            train_async(model, opt, loss_fn, steps=5, workers=2,
                        staleness_model="bogus")


def _toy_workload():
    def build(seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(24, 3))
        y = (x[:, 1] > 0).astype(int)
        model = nn.Sequential(nn.Linear(3, 6, seed=seed), nn.ReLU(),
                              nn.Linear(6, 2, seed=seed + 1))
        return model, lambda: F.cross_entropy(model(Tensor(x)), y)

    return Workload(name="toy", build=build, steps=20, smooth_window=5)


class TestRandomSearch:
    def test_finds_working_lr(self):
        result = random_search(
            _toy_workload(),
            lambda p, c: SGD(p, lr=c["lr"]),
            lambda rng: {"lr": log_uniform(rng, 1e-4, 1.0)},
            budget=5, optimizer_name="sgd", seed=0)
        assert result.total_runs == 5
        assert not result.best_run.diverged
        assert 1e-4 <= result.best_config["lr"] <= 1.0

    def test_log_uniform_bounds(self):
        rng = np.random.default_rng(0)
        samples = [log_uniform(rng, 1e-3, 1e-1) for _ in range(200)]
        assert min(samples) >= 1e-3 and max(samples) <= 1e-1
        # log-uniform: roughly half the samples below the geometric mean
        below = np.mean(np.array(samples) < 1e-2)
        assert 0.3 < below < 0.7

    def test_validation(self):
        with pytest.raises(ValueError):
            log_uniform(np.random.default_rng(0), 0.0, 1.0)
        with pytest.raises(ValueError):
            random_search(_toy_workload(), lambda p, c: SGD(p, lr=0.1),
                          lambda rng: {}, budget=0, optimizer_name="x")


class TestSerialization:
    def test_train_log_roundtrip(self, tmp_path):
        log = TrainLog()
        for step, v in enumerate([3.0, 2.0, 1.5]):
            log.append("loss", v, step)
        log.append("lr", 0.1, 0)
        path = tmp_path / "log.json"
        save_train_log(log, path)
        restored = load_train_log(path)
        np.testing.assert_allclose(restored.series("loss"),
                                   log.series("loss"))
        assert restored.steps["loss"] == [0, 1, 2]

    def test_results_roundtrip_with_arrays(self, tmp_path):
        path = tmp_path / "res.json"
        save_results({"curve": np.arange(3.0), "speedup": np.float64(1.5),
                      "nested": {"n": np.int64(7)}}, path)
        out = load_results(path)
        assert out["curve"] == [0.0, 1.0, 2.0]
        assert out["speedup"] == 1.5
        assert out["nested"]["n"] == 7


class TestAblationToggles:
    def test_no_debias_ema_biased_low_early(self):
        plain = ZeroDebiasEMA(beta=0.99, debias=False)
        debiased = ZeroDebiasEMA(beta=0.99, debias=True)
        for _ in range(5):
            plain.update(10.0)
            debiased.update(10.0)
        assert plain.value < 0.6 * debiased.value
        assert debiased.value == pytest.approx(10.0)

    def test_linear_space_curvature_lags_decay(self):
        log_cr = CurvatureRange(beta=0.99, window=1, log_space=True)
        lin_cr = CurvatureRange(beta=0.99, window=1, log_space=False)
        value = 1e8
        for _ in range(300):
            value *= 0.95
            log_cr.update(value)
            lin_cr.update(value)
        # the log-space estimate tracks the decayed level far better
        assert abs(np.log10(log_cr.hmax) - np.log10(value)) < \
            abs(np.log10(lin_cr.hmax) - np.log10(value))

    def test_yellowfin_accepts_ablation_flags(self):
        p = Tensor(np.ones(2), requires_grad=True)
        opt = YellowFin([p], zero_debias=False, log_space_curvature=False,
                        beta=0.9)
        for _ in range(5):
            p.grad = p.data.copy()
            opt.step()  # must run without error
        assert opt.t == 5


class TestRNNCell:
    def test_shapes_and_activations(self):
        cell = nn.RNNCell(3, 5, activation="relu", seed=0)
        h = cell(Tensor(np.random.default_rng(0).normal(size=(2, 3))),
                 cell.zero_state(2))
        assert h.shape == (2, 5)
        assert (h.data >= 0).all()

    def test_tanh_bounded(self):
        cell = nn.RNNCell(3, 5, activation="tanh", seed=0)
        h = cell(Tensor(10 * np.ones((1, 3))), cell.zero_state(1))
        assert (np.abs(h.data) <= 1.0).all()

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            nn.RNNCell(2, 2, activation="sine")

    def test_relu_identity_feedback_explodes(self):
        """The exploding-gradient construction: identity-dominant W with
        positive state grows geometrically."""
        cell = nn.RNNCell(1, 4, activation="relu", seed=0)
        cell.weight_hh.data = 1.5 * np.eye(4)
        cell.weight_ih.data = np.zeros((4, 1))
        cell.bias.data = np.zeros(4)
        h = Tensor(np.ones((1, 4)))
        for _ in range(20):
            h = cell(Tensor(np.zeros((1, 1))), h)
        assert h.data.max() > 1e3
