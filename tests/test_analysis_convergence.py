"""Loss smoothing, rate fitting, and the Table 2 speedup metric."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.convergence import (fit_linear_rate, iterations_to_loss,
                                        smooth_losses, speedup_ratio)


class TestSmoothing:
    def test_window_one_is_identity(self):
        x = np.array([3.0, 1.0, 2.0])
        np.testing.assert_allclose(smooth_losses(x, 1), x)

    def test_constant_preserved(self):
        np.testing.assert_allclose(smooth_losses(np.full(50, 2.5), 10), 2.5)

    def test_matches_manual_average(self):
        x = np.arange(10, dtype=float)
        out = smooth_losses(x, 4)
        # tail: mean of trailing 4 values
        assert out[9] == pytest.approx(np.mean(x[6:10]))
        # head grows: out[1] = mean(x[:2])
        assert out[1] == pytest.approx(0.5)

    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=100),
           st.integers(1, 50))
    @settings(max_examples=100, deadline=None)
    def test_output_within_data_range(self, values, window):
        out = smooth_losses(values, window)
        assert out.min() >= min(values) - 1e-9
        assert out.max() <= max(values) + 1e-9

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            smooth_losses(np.zeros((2, 2)), 2)


class TestRateFit:
    def test_recovers_exact_rate(self):
        beta = 0.93
        dist = 10.0 * beta ** np.arange(100)
        assert fit_linear_rate(dist) == pytest.approx(beta, abs=1e-9)

    def test_burn_in_skips_transient(self):
        dist = np.concatenate([np.full(20, 5.0), 5.0 * 0.9 ** np.arange(80)])
        rate = fit_linear_rate(dist, burn_in=20)
        assert rate == pytest.approx(0.9, abs=1e-6)

    def test_floor_excludes_zeros(self):
        dist = np.array([1.0, 0.5, 0.25, 0.0, 0.0])
        rate = fit_linear_rate(dist)
        assert rate == pytest.approx(0.5, abs=1e-9)

    def test_raises_on_all_zero(self):
        with pytest.raises(ValueError):
            fit_linear_rate(np.zeros(10))


class TestIterationsToLoss:
    def test_first_hit(self):
        losses = [5.0, 4.0, 3.0, 2.0, 1.0]
        assert iterations_to_loss(losses, 3.0) == 2
        assert iterations_to_loss(losses, 0.5) is None


class TestSpeedupRatio:
    def test_twice_as_fast(self):
        fast = 10.0 * 0.8 ** np.arange(100)
        slow = 10.0 * 0.8 ** (np.arange(100) / 2)
        speedup, common = speedup_ratio(slow, fast)
        assert speedup == pytest.approx(2.0, abs=0.1)

    def test_identical_curves_give_one(self):
        c = 5.0 * 0.9 ** np.arange(50)
        speedup, _ = speedup_ratio(c, c)
        assert speedup == pytest.approx(1.0)

    def test_slower_candidate_below_one(self):
        fast = 10.0 * 0.8 ** np.arange(100)
        slow = 10.0 * 0.9 ** np.arange(100)
        speedup, _ = speedup_ratio(fast, slow)
        assert speedup < 1.0

    def test_common_loss_is_achievable_by_both(self):
        a = np.linspace(10, 2, 50)   # reaches 2
        b = np.linspace(10, 4, 50)   # only reaches 4
        _, common = speedup_ratio(a, b)
        assert common == pytest.approx(4.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            speedup_ratio([], [1.0])
