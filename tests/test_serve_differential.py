"""Differential gate: served records are bit-identical to local run().

The serving daemon answers from four paths — fresh scalar execution,
cross-tenant batched execution, the content-addressed result cache,
and the in-flight dedup index.  Every one of them must hand back a
record whose deterministic identity (name, spec hash, metrics, series)
equals a local :func:`repro.run.run` of the same spec; anything else
means the service layer perturbed the science.  This suite also proves
the computed-exactly-once property: duplicate traffic never increments
``serve.jobs_computed``.
"""

import pytest

from repro.run import run
from repro.serve import Client, ServeConfig, ServeDaemon
from repro.xp.spec import ScenarioSpec


def make_spec(seed=0, name="diff", **overrides):
    base = dict(name=name, workload="quadratic_bowl",
                workload_params={"dim": 8, "noise_horizon": 8},
                optimizer="momentum_sgd",
                optimizer_params={"lr": 0.02, "momentum": 0.5},
                delay={"kind": "constant", "delay": 1.0},
                workers=2, reads=25, seed=seed, smooth=4)
    base.update(overrides)
    return ScenarioSpec(**base)


def local_identity(spec):
    """The ground truth: what run() computes for this spec locally."""
    (record,) = run(spec).results
    return record.identity()


@pytest.fixture
def daemon(tmp_path):
    d = ServeDaemon(ServeConfig(
        cache_dir=str(tmp_path / "cache"), min_workers=1,
        max_workers=2)).start()
    yield d
    d.stop()


class TestServedEqualsLocal:
    def test_uncached_scalar_path(self, daemon):
        # the delay model draws from its own declared seed — without
        # one, stochastic delays are unrepeatable by design, so the
        # differential contract only covers seeded configurations
        spec = make_spec(seed=3, name="diff/scalar",
                         delay={"kind": "uniform", "low": 0.5,
                                "high": 1.5, "seed": 13})
        client = Client(daemon.address, tenant="t")
        record = client.result(client.submit(spec), timeout=120)
        assert record.env["serve_unit"] == "scalar"
        assert record.identity() == local_identity(spec)

    def test_cross_tenant_batched_path(self, daemon):
        specs = [make_spec(seed=s, name=f"diff/b{s}")
                 for s in (1, 2, 3)]
        clients = [Client(daemon.address, tenant=f"tenant-{i}")
                   for i in range(3)]
        daemon.pause()
        tickets = [c.submit(s) for c, s in zip(clients, specs)]
        daemon.resume()
        records = [c.result(t, timeout=120)
                   for c, t in zip(clients, tickets)]
        for record, spec in zip(records, specs):
            assert record.env["serve_unit"] == "batched:3"
            assert record.identity() == local_identity(spec)

    def test_cached_path(self, daemon):
        spec = make_spec(seed=4, name="diff/cached")
        client = Client(daemon.address, tenant="t")
        first = client.result(client.submit(spec), timeout=120)
        ticket = client.submit(spec)
        assert ticket.cached
        record = client.result(ticket, timeout=30)
        assert record.cached and not first.cached
        assert record.identity() == first.identity() \
            == local_identity(spec)

    def test_batched_equals_scalar_serving(self, tmp_path):
        # the same spec served batched and served alone must agree —
        # the serving layer's unit shape is not allowed to matter
        spec = make_spec(seed=7, name="diff/shape")
        sibling = make_spec(seed=8, name="diff/shape-sib")
        batched = ServeDaemon(ServeConfig(
            cache_dir=None, min_workers=1, max_workers=1)).start()
        try:
            client = Client(batched.address)
            batched.pause()
            t1 = client.submit(spec)
            client.submit(sibling)
            batched.resume()
            via_batch = client.result(t1, timeout=120)
        finally:
            batched.stop()
        alone = ServeDaemon(ServeConfig(
            cache_dir=None, min_workers=1, max_workers=1,
            scheduler="fifo")).start()
        try:
            client = Client(alone.address)
            via_scalar = client.result(client.submit(spec),
                                       timeout=120)
        finally:
            alone.stop()
        assert via_batch.env["serve_unit"] == "batched:2"
        assert via_scalar.env["serve_unit"] == "scalar"
        assert via_batch.identity() == via_scalar.identity()


class TestComputedExactlyOnce:
    def test_duplicates_in_one_submission_share_a_job(self, daemon):
        spec = make_spec(seed=5, name="diff/dup")
        client = Client(daemon.address, tenant="t")
        daemon.pause()
        t1, t2 = client.submit([spec, spec])
        daemon.resume()
        assert t2.deduplicated and not t1.deduplicated
        assert t1.job_id == t2.job_id
        r1 = client.result(t1, timeout=120)
        r2 = client.result(t2, timeout=120)
        assert r1.identity() == r2.identity() == local_identity(spec)
        counters = daemon.metrics.snapshot()["counters"]
        assert counters["serve.jobs_computed"] == 1
        assert counters["serve.deduplicated"] == 1

    def test_concurrent_tenants_dedup_against_inflight(self, daemon):
        spec = make_spec(seed=6, name="diff/race")
        alice = Client(daemon.address, tenant="alice")
        bob = Client(daemon.address, tenant="bob")
        daemon.pause()
        ta = alice.submit(spec)
        tb = bob.submit(spec)
        daemon.resume()
        assert tb.deduplicated
        assert ta.job_id == tb.job_id
        ra = alice.result(ta, timeout=120)
        rb = bob.result(tb, timeout=120)
        assert ra.identity() == rb.identity() == local_identity(spec)
        assert daemon.metrics.snapshot()["counters"][
            "serve.jobs_computed"] == 1

    def test_cache_hit_never_reaches_the_pool(self, daemon):
        spec = make_spec(seed=9, name="diff/hot")
        client = Client(daemon.address, tenant="t")
        client.result(client.submit(spec), timeout=120)
        before = daemon.pool.units_dispatched
        for _ in range(5):
            ticket = client.submit(spec)
            assert ticket.cached
            client.result(ticket, timeout=30)
        assert daemon.pool.units_dispatched == before
        assert daemon.metrics.snapshot()["counters"][
            "serve.jobs_computed"] == 1
