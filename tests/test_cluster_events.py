"""Ordering invariants of the deterministic event core.

Direct unit tests for :mod:`repro.cluster.events`, the priority queue
everything else's determinism rests on:

- events pop in ``(time, seq)`` order, so simultaneous events resolve
  in scheduling order — the tie-break that makes runs replayable;
- :meth:`EventQueue.reschedule` keeps the original sequence number, so
  a deferred event still sorts ahead of anything scheduled after it at
  the same time (deferral shifts time, never inverts delivery order);
- ``state_dict`` / ``load_state_dict`` replay stably: a restored queue
  pops the identical event sequence, keeps the sequence counter, and
  deep-copies gradient payloads instead of aliasing them.
"""

import numpy as np
import pytest

from repro.cluster.events import Event, EventQueue


def drain(queue):
    order = []
    while queue:
        ev = queue.pop()
        order.append((ev.time, ev.seq, ev.kind, ev.worker))
    return order


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.schedule(3.0, "arrival", 0)
        q.schedule(1.0, "arrival", 1)
        q.schedule(2.0, "crash", 2)
        assert [e[0] for e in drain(q)] == [1.0, 2.0, 3.0]

    def test_simultaneous_events_resolve_in_schedule_order(self):
        q = EventQueue()
        for worker in range(5):
            q.schedule(7.0, "arrival", worker)
        assert [e[3] for e in drain(q)] == [0, 1, 2, 3, 4]

    def test_seq_is_monotone_across_kinds_and_times(self):
        q = EventQueue()
        seqs = [q.schedule(float(t), kind, 0).seq
                for t, kind in ((5, "arrival"), (1, "crash"),
                                (3, "restart"))]
        assert seqs == [0, 1, 2]

    def test_earlier_time_beats_earlier_seq(self):
        q = EventQueue()
        q.schedule(9.0, "arrival", 0)   # seq 0
        q.schedule(2.0, "arrival", 1)   # seq 1
        assert q.pop().worker == 1

    def test_payload_never_participates_in_ordering(self):
        # payloads are incomparable dicts: ordering must not touch them
        q = EventQueue()
        q.schedule(1.0, "arrival", 0, {"grads": [np.ones(3)]})
        q.schedule(1.0, "arrival", 1, {"unorderable": object()})
        assert [e[3] for e in drain(q)] == [0, 1]


class TestReschedule:
    def test_reschedule_keeps_seq(self):
        q = EventQueue()
        ev = q.schedule(1.0, "arrival", 0, {"tag": "deferred"})
        popped = q.pop()
        moved = q.reschedule(popped, 4.0)
        assert moved.seq == ev.seq == 0
        assert moved.time == 4.0
        assert moved.payload == {"tag": "deferred"}

    def test_deferred_event_sorts_before_later_scheduled_ties(self):
        q = EventQueue()
        early = q.schedule(1.0, "arrival", 0)          # seq 0
        q.schedule(5.0, "arrival", 1)                  # seq 1
        q.reschedule(q.pop(), 5.0)                     # seq 0 at t=5
        assert early.seq == 0
        assert [e[3] for e in drain(q)] == [0, 1]

    def test_reschedule_does_not_advance_the_counter(self):
        q = EventQueue()
        q.reschedule(q.schedule(1.0, "arrival", 0), 2.0)
        assert q.schedule(3.0, "arrival", 1).seq == 1


class TestInspection:
    def test_peek_len_bool(self):
        q = EventQueue()
        assert q.peek() is None and len(q) == 0 and not q
        q.schedule(2.0, "arrival", 0)
        q.schedule(1.0, "crash", 1)
        assert q.peek().kind == "crash"
        assert len(q) == 2 and bool(q)
        drain(q)
        assert not q

    def test_pending_workers_and_count_kind(self):
        q = EventQueue()
        q.schedule(1.0, "arrival", 0)
        q.schedule(2.0, "crash", 0)
        q.schedule(3.0, "restart", 2)
        assert q.pending_workers() == {0, 2}
        assert q.count_kind("crash") == 1
        assert q.count_kind("arrival") == 1
        assert q.count_kind("pause") == 0


class TestStateDictReplay:
    def populated(self):
        q = EventQueue()
        rng = np.random.default_rng(0)
        for i in range(12):
            q.schedule(float(rng.uniform(0, 5)), "arrival", i % 3,
                       {"grads": [rng.normal(size=4)], "step": i})
        q.schedule(2.5, "crash", 1)
        q.schedule(2.5, "restart", 1)
        return q

    def test_restored_queue_replays_identically(self):
        original = self.populated()
        state = original.state_dict()
        restored = EventQueue()
        restored.load_state_dict(state)
        a, b = drain(original), drain(restored)
        assert a == b

    def test_two_restores_from_one_state_are_stable(self):
        state = self.populated().state_dict()
        first, second = EventQueue(), EventQueue()
        first.load_state_dict(state)
        second.load_state_dict(state)
        while first:
            x, y = first.pop(), second.pop()
            assert (x.time, x.seq, x.kind, x.worker) == \
                (y.time, y.seq, y.kind, y.worker)
            for gx, gy in zip(x.payload.get("grads", []),
                              y.payload.get("grads", [])):
                assert np.array_equal(gx, gy)
        assert not second

    def test_seq_counter_survives_restore(self):
        original = self.populated()
        n = len(original)
        restored = EventQueue()
        restored.load_state_dict(original.state_dict())
        assert restored.schedule(9.0, "arrival", 0).seq == \
            original.schedule(9.0, "arrival", 0).seq == n

    def test_gradient_payloads_are_copied_not_aliased(self):
        q = EventQueue()
        grad = np.ones(4)
        q.schedule(1.0, "arrival", 0, {"grads": [grad]})
        state = q.state_dict()
        grad[:] = -7.0  # mutate after checkpoint: state must not move
        assert np.array_equal(state["entries"][0]["payload"]["grads"][0],
                              np.ones(4))
        restored = EventQueue()
        restored.load_state_dict(state)
        state["entries"][0]["payload"]["grads"][0][:] = 99.0
        assert np.array_equal(restored.pop().payload["grads"][0],
                              np.ones(4))

    def test_state_entries_sorted_in_pop_order(self):
        state = self.populated().state_dict()
        keys = [(e["time"], e["seq"]) for e in state["entries"]]
        assert keys == sorted(keys)


def test_event_dataclass_orders_by_time_then_seq():
    a = Event(time=1.0, seq=5, kind="arrival", worker=0)
    b = Event(time=1.0, seq=6, kind="crash", worker=1)
    c = Event(time=0.5, seq=9, kind="restart", worker=2)
    assert sorted([b, a, c]) == [c, a, b]


def test_pop_on_empty_queue_raises():
    with pytest.raises(IndexError):
        EventQueue().pop()


class TestIncrementalIndexes:
    """count_kind / pending_workers stay consistent with the heap
    through arbitrary schedule / pop / reschedule / restore traffic —
    the O(1) indexes the fleet-scale resume and fuzz paths rely on."""

    @staticmethod
    def recount(queue):
        kinds, workers = {}, set()
        for ev in queue._heap:
            kinds[ev.kind] = kinds.get(ev.kind, 0) + 1
            workers.add(ev.worker)
        return kinds, workers

    def check(self, queue):
        kinds, workers = self.recount(queue)
        for kind in ("arrival", "crash", "restart", "ghost"):
            assert queue.count_kind(kind) == kinds.get(kind, 0)
        assert queue.pending_workers() == workers

    def test_hammer_matches_recomputation(self):
        rng = np.random.default_rng(17)
        queue = EventQueue()
        kinds = ("arrival", "crash", "restart")
        for round_no in range(200):
            action = rng.integers(0, 4)
            if action == 0 or not queue:
                queue.schedule(float(rng.random() * 10),
                               kinds[int(rng.integers(0, 3))],
                               int(rng.integers(0, 6)))
            elif action == 1:
                queue.pop()
            elif action == 2:
                ev = queue.pop()
                queue.reschedule(ev, ev.time + float(rng.random()))
            else:
                restored = EventQueue()
                restored.load_state_dict(queue.state_dict())
                queue = restored
            self.check(queue)
        while queue:
            queue.pop()
            self.check(queue)
        assert queue.count_kind("arrival") == 0
        assert queue.pending_workers() == set()

    def test_restore_rebuilds_indexes_from_scratch(self):
        queue = EventQueue()
        queue.schedule(1.0, "arrival", 0)
        queue.schedule(2.0, "crash", 1)
        state = queue.state_dict()
        dirty = EventQueue()
        dirty.schedule(5.0, "ghost", 9)  # stale index entries
        dirty.load_state_dict(state)
        assert dirty.count_kind("ghost") == 0
        assert dirty.pending_workers() == {0, 1}
        self.check(dirty)
