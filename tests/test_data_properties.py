"""Property-based invariants of the dataset generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (BracketedTreebank, MarkovTextCorpus,
                        SyntheticTranslation, TwoQuadratic)
from repro.data.parsing import CLOSE, OPEN


class TestMarkovCorpusProperties:
    @given(st.integers(5, 40), st.integers(0, 10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_rows_are_distributions(self, vocab, seed):
        corpus = MarkovTextCorpus(vocab_size=vocab, length=50, seed=seed)
        np.testing.assert_allclose(corpus.transitions.sum(axis=1), 1.0,
                                   atol=1e-12)
        assert (corpus.transitions >= 0).all()

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=10, deadline=None)
    def test_entropy_rate_bounds(self, seed):
        corpus = MarkovTextCorpus(vocab_size=20, length=50, branching=4,
                                  seed=seed)
        assert 0.0 <= corpus.entropy_rate <= np.log(4) + 1e-9


class TestTreebankProperties:
    @given(st.integers(0, 10 ** 6), st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_brackets_always_balanced(self, seed, depth):
        bank = BracketedTreebank(num_sentences=20, max_depth=depth,
                                 seed=seed)
        level = 0
        for tok in bank.tokens:
            level += int(tok == OPEN) - int(tok == CLOSE)
            assert level >= 0
        assert level == 0

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=10, deadline=None)
    def test_depth_bound_respected(self, seed):
        bank = BracketedTreebank(num_sentences=30, max_depth=3, seed=seed)
        level, worst = 0, 0
        for tok in bank.tokens:
            level += int(tok == OPEN) - int(tok == CLOSE)
            worst = max(worst, level)
        assert worst <= 3


class TestTranslationProperties:
    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_permutation_is_bijection(self, seed):
        data = SyntheticTranslation(vocab_size=17, seq_len=4, train_size=8,
                                    test_size=4, seed=seed)
        assert sorted(data.permutation.tolist()) == list(range(17))

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_target_invertible(self, seed):
        data = SyntheticTranslation(vocab_size=13, seq_len=5, train_size=8,
                                    test_size=4, seed=seed)
        inverse = np.argsort(data.permutation)
        np.testing.assert_array_equal(inverse[data.tgt_train],
                                      data.src_train)


class TestTwoQuadraticProperties:
    @given(st.floats(1.0, 1e4), st.floats(0.01, 10.0),
           st.floats(-50.0, 50.0))
    @settings(max_examples=100, deadline=None)
    def test_gradient_points_away_from_origin(self, h_sharp, width, x):
        """f is even with unique minimum at 0: sign(f'(x)) == sign(x)."""
        obj = TwoQuadratic(h_sharp=h_sharp, h_flat=1.0, width=width)
        if x == 0.0:
            assert obj.grad(0.0) == 0.0
        else:
            assert np.sign(obj.grad(x)) == np.sign(x)

    @given(st.floats(1.0, 1e4), st.floats(-50.0, 50.0))
    @settings(max_examples=100, deadline=None)
    def test_generalized_curvature_in_declared_range(self, h_sharp, x):
        obj = TwoQuadratic(h_sharp=h_sharp, h_flat=1.0, width=1.0)
        if x == 0.0:
            return
        h = obj.generalized_curvature(x)
        assert 1.0 - 1e-9 <= h <= h_sharp + 1e-9
