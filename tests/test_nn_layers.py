"""Layer behaviour and gradient checks for the nn library."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.autograd.grad_check import check_gradients


def x(shape, seed=0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestLinear:
    def test_forward_shape(self):
        layer = nn.Linear(4, 7, seed=0)
        assert layer(x((5, 4))).shape == (5, 7)

    def test_grad(self):
        layer = nn.Linear(3, 2, seed=0)
        inp = x((4, 3))
        check_gradients(lambda a: layer(a), [inp])
        check_gradients(lambda w: nn.Linear.forward(layer, inp.detach()),
                        [layer.weight])

    def test_no_bias(self):
        layer = nn.Linear(3, 2, bias=False, seed=0)
        assert layer.bias is None
        assert len(layer.parameters()) == 1


class TestConv2d:
    def test_forward_shape(self):
        layer = nn.Conv2d(3, 8, 3, padding=1, seed=0)
        assert layer(x((2, 3, 6, 6))).shape == (2, 8, 6, 6)

    def test_stride_halves(self):
        layer = nn.Conv2d(3, 8, 3, stride=2, padding=1, seed=0)
        assert layer(x((2, 3, 8, 8))).shape == (2, 8, 4, 4)

    def test_param_grad(self):
        layer = nn.Conv2d(2, 3, 3, padding=1, seed=0)
        inp = x((1, 2, 4, 4)).detach()
        check_gradients(lambda w: nn.Conv2d.forward(layer, inp),
                        [layer.weight], atol=1e-4)


class TestBatchNorm:
    def test_train_normalizes(self):
        layer = nn.BatchNorm2d(4)
        out = layer(x((8, 4, 5, 5)))
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), 0.0,
                                   atol=1e-10)
        np.testing.assert_allclose(out.data.std(axis=(0, 2, 3)), 1.0,
                                   atol=1e-3)

    def test_running_stats_track(self):
        layer = nn.BatchNorm2d(2)
        inp = x((16, 2, 4, 4))
        for _ in range(200):
            layer(inp)
        np.testing.assert_allclose(layer.running_mean,
                                   inp.data.mean(axis=(0, 2, 3)), atol=1e-3)

    def test_eval_uses_running_stats(self):
        layer = nn.BatchNorm2d(2)
        inp = x((16, 2, 4, 4))
        for _ in range(100):
            layer(inp)
        layer.eval()
        out_eval = layer(inp)
        # eval output should roughly match train output after convergence
        layer.train()
        out_train = layer(inp)
        np.testing.assert_allclose(out_eval.data, out_train.data, atol=0.1)

    def test_grad(self):
        layer = nn.BatchNorm2d(2)
        check_gradients(lambda a: layer(a), [x((4, 2, 3, 3))], atol=1e-4)

    def test_rejects_non_4d(self):
        with pytest.raises(ValueError):
            nn.BatchNorm2d(2)(x((4, 2)))


class TestLayerNorm:
    def test_normalizes_last_dim(self):
        layer = nn.LayerNorm(6)
        out = layer(x((4, 6)))
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-10)

    def test_grad(self):
        layer = nn.LayerNorm(5)
        check_gradients(lambda a: layer(a), [x((3, 5))], atol=1e-4)


class TestEmbedding:
    def test_shape(self):
        emb = nn.Embedding(10, 4, seed=0)
        assert emb(np.array([[1, 2], [3, 4]])).shape == (2, 2, 4)

    def test_out_of_range(self):
        emb = nn.Embedding(5, 3, seed=0)
        with pytest.raises(IndexError):
            emb(np.array([5]))


class TestContainers:
    def test_sequential(self):
        net = nn.Sequential(nn.Linear(3, 5, seed=0), nn.ReLU(),
                            nn.Linear(5, 2, seed=1))
        assert net(x((4, 3))).shape == (4, 2)
        assert len(net) == 3
        assert isinstance(net[0], nn.Linear)

    def test_module_list(self):
        lst = nn.ModuleList([nn.Linear(2, 2, seed=0)])
        lst.append(nn.Linear(2, 2, seed=1))
        assert len(lst) == 2
        assert len(lst[1].parameters()) == 2


class TestModuleProtocol:
    def test_named_parameters_nested(self):
        net = nn.Sequential(nn.Linear(2, 3, seed=0), nn.Linear(3, 1, seed=1))
        names = dict(net.named_parameters())
        assert "layer0.weight" in names and "layer1.bias" in names
        assert len(names) == 4

    def test_state_dict_roundtrip(self):
        net = nn.Sequential(nn.Linear(2, 3, seed=0), nn.BatchNorm2d(3))
        state = net.state_dict()
        net2 = nn.Sequential(nn.Linear(2, 3, seed=9), nn.BatchNorm2d(3))
        net2.load_state_dict(state)
        np.testing.assert_allclose(net2[0].weight.data, net[0].weight.data)
        np.testing.assert_allclose(net2[1].running_mean, net[1].running_mean)

    def test_train_eval_propagates(self):
        net = nn.Sequential(nn.Linear(2, 2, seed=0), nn.BatchNorm2d(2))
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_zero_grad(self):
        layer = nn.Linear(2, 2, seed=0)
        out = layer(x((3, 2)))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_num_parameters(self):
        layer = nn.Linear(3, 5, seed=0)
        assert layer.num_parameters() == 3 * 5 + 5
