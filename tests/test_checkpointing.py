"""Optimizer checkpoint/resume: a restored run must continue identically."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import ClosedLoopYellowFin, YellowFin
from repro.optim import Adam, AdaGrad, MomentumSGD, RMSProp, SGD


def make_problem(seed=0):
    rng = np.random.default_rng(seed)
    p = Tensor(rng.normal(size=5), requires_grad=True)
    h = np.array([1.0, 2.0, 0.5, 3.0, 1.5])
    noise = rng.normal(size=(60, 5)) * 0.05
    return p, h, noise


def drive(opt, p, h, noise, start, stop):
    for t in range(start, stop):
        p.grad = h * p.data + noise[t]
        opt.step()


FACTORIES = {
    "sgd": lambda p: SGD([p], lr=0.1),
    "momentum": lambda p: MomentumSGD([p], lr=0.1, momentum=0.8),
    "nesterov": lambda p: MomentumSGD([p], lr=0.1, momentum=0.8,
                                      nesterov=True),
    "adam": lambda p: Adam([p], lr=0.05),
    "adagrad": lambda p: AdaGrad([p], lr=0.2),
    "rmsprop": lambda p: RMSProp([p], lr=0.05),
    "yellowfin": lambda p: YellowFin([p], beta=0.9, window=3),
}


@pytest.mark.parametrize("name", list(FACTORIES))
def test_resume_matches_uninterrupted(name):
    factory = FACTORIES[name]

    # uninterrupted reference run
    p_ref, h, noise = make_problem()
    opt_ref = factory(p_ref)
    drive(opt_ref, p_ref, h, noise, 0, 60)

    # checkpoint at step 30, restore into a fresh optimizer, continue
    p_a, h, noise = make_problem()
    opt_a = factory(p_a)
    drive(opt_a, p_a, h, noise, 0, 30)
    state = opt_a.state_dict()
    params_snapshot = p_a.data.copy()

    p_b = Tensor(params_snapshot.copy(), requires_grad=True)
    opt_b = FACTORIES[name](p_b)
    opt_b.load_state_dict(state)
    drive(opt_b, p_b, h, noise, 30, 60)

    np.testing.assert_allclose(p_b.data, p_ref.data, atol=1e-12,
                               err_msg=f"{name} resume diverged from "
                               "uninterrupted run")


def test_state_dict_is_deep_copy():
    p = Tensor(np.ones(3), requires_grad=True)
    opt = MomentumSGD([p], lr=0.1, momentum=0.9)
    p.grad = np.ones(3)
    opt.step()
    state = opt.state_dict()
    p.grad = np.ones(3)
    opt.step()  # mutate internal velocity
    # snapshot must be unaffected by later steps
    np.testing.assert_allclose(state["extra"]["velocity"][0],
                               np.full(3, -0.1))


def test_yellowfin_state_roundtrip_preserves_tuning():
    p, h, noise = make_problem()
    opt = YellowFin([p], beta=0.9, window=3)
    drive(opt, p, h, noise, 0, 20)
    state = opt.state_dict()

    p2 = Tensor(p.data.copy(), requires_grad=True)
    opt2 = YellowFin([p2], beta=0.9, window=3)
    opt2.load_state_dict(state)
    assert opt2.momentum == pytest.approx(opt.momentum)
    assert opt2.lr == pytest.approx(opt.lr)
    snap, snap2 = opt.measurements.snapshot(), opt2.measurements.snapshot()
    assert snap.hmax == pytest.approx(snap2.hmax)
    assert snap.variance == pytest.approx(snap2.variance)
    assert snap.distance == pytest.approx(snap2.distance)
