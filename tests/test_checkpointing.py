"""Optimizer checkpoint/resume: a restored run must continue identically."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import ClosedLoopYellowFin, YellowFin
from repro.optim import Adam, AdaGrad, MomentumSGD, RMSProp, SGD


def make_problem(seed=0):
    rng = np.random.default_rng(seed)
    p = Tensor(rng.normal(size=5), requires_grad=True)
    h = np.array([1.0, 2.0, 0.5, 3.0, 1.5])
    noise = rng.normal(size=(60, 5)) * 0.05
    return p, h, noise


def drive(opt, p, h, noise, start, stop):
    for t in range(start, stop):
        p.grad = h * p.data + noise[t]
        opt.step()


FACTORIES = {
    "sgd": lambda p, fused=False: SGD([p], lr=0.1, weight_decay=0.01,
                                      fused=fused),
    "momentum": lambda p, fused=False: MomentumSGD([p], lr=0.1,
                                                   momentum=0.8,
                                                   fused=fused),
    "nesterov": lambda p, fused=False: MomentumSGD([p], lr=0.1,
                                                   momentum=0.8,
                                                   nesterov=True,
                                                   fused=fused),
    "adam": lambda p, fused=False: Adam([p], lr=0.05, fused=fused),
    "adagrad": lambda p, fused=False: AdaGrad([p], lr=0.2, fused=fused),
    "rmsprop": lambda p, fused=False: RMSProp([p], lr=0.05, fused=fused),
    "yellowfin": lambda p, fused=False: YellowFin([p], beta=0.9, window=3,
                                                  fused=fused),
    "closed_loop": lambda p, fused=False: ClosedLoopYellowFin(
        [p], staleness=0, beta=0.9, window=3, fused=fused),
}


@pytest.mark.parametrize("fused", [False, True],
                         ids=["unfused", "fused"])
@pytest.mark.parametrize("name", list(FACTORIES))
def test_resume_matches_uninterrupted(name, fused):
    factory = FACTORIES[name]

    # uninterrupted reference run
    p_ref, h, noise = make_problem()
    opt_ref = factory(p_ref, fused=fused)
    drive(opt_ref, p_ref, h, noise, 0, 60)

    # checkpoint at step 30, restore into a fresh optimizer, continue
    p_a, h, noise = make_problem()
    opt_a = factory(p_a, fused=fused)
    drive(opt_a, p_a, h, noise, 0, 30)
    state = opt_a.state_dict()
    params_snapshot = p_a.data.copy()

    p_b = Tensor(params_snapshot.copy(), requires_grad=True)
    opt_b = factory(p_b, fused=fused)
    opt_b.load_state_dict(state)
    drive(opt_b, p_b, h, noise, 30, 60)

    np.testing.assert_allclose(p_b.data, p_ref.data, atol=1e-12,
                               err_msg=f"{name} resume diverged from "
                               "uninterrupted run")


@pytest.mark.parametrize("name", list(FACTORIES))
def test_checkpoints_move_between_fused_and_unfused(name):
    """state_dict always uses the per-tensor format, so a fused run can
    restore an unfused checkpoint and vice versa."""
    factory = FACTORIES[name]

    p_ref, h, noise = make_problem()
    opt_ref = factory(p_ref, fused=False)
    drive(opt_ref, p_ref, h, noise, 0, 60)

    p_a, h, noise = make_problem()
    opt_a = factory(p_a, fused=False)
    drive(opt_a, p_a, h, noise, 0, 30)
    state = opt_a.state_dict()

    # restore the unfused checkpoint into a fused optimizer
    p_b = Tensor(p_a.data.copy(), requires_grad=True)
    opt_b = factory(p_b, fused=True)
    opt_b.load_state_dict(state)
    drive(opt_b, p_b, h, noise, 30, 60)

    np.testing.assert_allclose(p_b.data, p_ref.data, atol=1e-9,
                               err_msg=f"{name} cross-mode restore "
                               "diverged")


@pytest.mark.parametrize("name", list(FACTORIES))
def test_state_dict_survives_json_round_trip(name):
    """Checkpoints pass through the lossless JSON codec unchanged."""
    import json

    from repro.utils import decode_state, encode_state

    p, h, noise = make_problem()
    opt = FACTORIES[name](p)
    drive(opt, p, h, noise, 0, 20)
    state = opt.state_dict()
    restored = decode_state(json.loads(json.dumps(encode_state(state))))

    p2 = Tensor(p.data.copy(), requires_grad=True)
    opt2 = FACTORIES[name](p2)
    opt2.load_state_dict(restored)
    drive(opt, p, h, noise, 20, 40)
    drive(opt2, p2, h, noise, 20, 40)
    np.testing.assert_array_equal(p.data, p2.data)


class TestFlatParamsSnapshot:
    def make_flat(self):
        from repro.autograd.flat import FlatParams

        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([[3.0], [4.0]]), requires_grad=True)
        return FlatParams([a, b]), a, b

    def test_round_trip_restores_values(self):
        flat, a, b = self.make_flat()
        snap = flat.snapshot()
        flat.buffer *= 10.0
        assert a.data[0] == 10.0
        flat.restore(snap)
        np.testing.assert_array_equal(a.data, [1.0, 2.0])
        np.testing.assert_array_equal(b.data, [[3.0], [4.0]])

    def test_snapshot_is_a_copy(self):
        flat, a, _ = self.make_flat()
        snap = flat.snapshot()
        flat.buffer += 1.0
        np.testing.assert_array_equal(snap, [1.0, 2.0, 3.0, 4.0])

    def test_snapshot_and_restore_heal_rebinding(self):
        """Both sides re-pack first, so values rebound onto p.data (as
        Module.load_state_dict does) are never lost or clobbered."""
        flat, a, b = self.make_flat()
        a.data = np.array([7.0, 8.0])  # rebind breaks the aliasing
        snap = flat.snapshot()  # must see the rebound values
        np.testing.assert_array_equal(snap, [7.0, 8.0, 3.0, 4.0])

        b.data = np.array([[9.0], [9.0]])  # rebind again
        flat.restore(snap)
        np.testing.assert_array_equal(b.data, [[3.0], [4.0]])
        assert flat.packed  # aliasing re-established

    def test_restore_validates_shape(self):
        flat, _, _ = self.make_flat()
        with pytest.raises(ValueError):
            flat.restore(np.zeros(3))


def test_sgd_loads_legacy_checkpoint_without_weight_decay():
    """Checkpoints written before weight_decay was recorded have an
    empty extra dict; loading one must not raise."""
    p = Tensor(np.ones(3), requires_grad=True)
    opt = SGD([p], lr=0.1, weight_decay=0.05)
    opt.load_state_dict({"t": 5, "lr": 0.2, "extra": {}})
    assert opt.t == 5 and opt.lr == 0.2
    assert opt.weight_decay == 0.05  # construction value kept


def test_state_dict_is_deep_copy():
    p = Tensor(np.ones(3), requires_grad=True)
    opt = MomentumSGD([p], lr=0.1, momentum=0.9)
    p.grad = np.ones(3)
    opt.step()
    state = opt.state_dict()
    p.grad = np.ones(3)
    opt.step()  # mutate internal velocity
    # snapshot must be unaffected by later steps
    np.testing.assert_allclose(state["extra"]["velocity"][0],
                               np.full(3, -0.1))


def test_yellowfin_state_roundtrip_preserves_tuning():
    p, h, noise = make_problem()
    opt = YellowFin([p], beta=0.9, window=3)
    drive(opt, p, h, noise, 0, 20)
    state = opt.state_dict()

    p2 = Tensor(p.data.copy(), requires_grad=True)
    opt2 = YellowFin([p2], beta=0.9, window=3)
    opt2.load_state_dict(state)
    assert opt2.momentum == pytest.approx(opt.momentum)
    assert opt2.lr == pytest.approx(opt.lr)
    snap, snap2 = opt.measurements.snapshot(), opt2.measurements.snapshot()
    assert snap.hmax == pytest.approx(snap2.hmax)
    assert snap.variance == pytest.approx(snap2.variance)
    assert snap.distance == pytest.approx(snap2.distance)
