"""repro.sim.metrics runtime helpers on edge-case inputs.

``staleness_histogram`` / ``staleness_summary`` /
``event_timeline_summary`` against empty series, single-worker runs,
logs without origin metadata, and timelines that include fault
records — the inputs a freshly constructed or fault-heavy cluster run
actually produces.
"""

import math

from repro.sim.metrics import (event_timeline_summary,
                               staleness_histogram, staleness_summary)
from repro.utils.logging import TrainLog


def make_log(staleness=(), workers=None):
    log = TrainLog()
    for step, value in enumerate(staleness):
        log.append("staleness", value, step)
        if workers is not None:
            log.append("worker", workers[step], step)
    return log


class TestStalenessHistogram:
    def test_empty_log(self):
        assert staleness_histogram(TrainLog()) == {}

    def test_single_worker_run(self):
        log = make_log([0, 1, 1, 2], workers=[0, 0, 0, 0])
        assert staleness_histogram(log) == {0: {0: 1, 1: 2, 2: 1}}

    def test_missing_worker_series_buckets_under_minus_one(self):
        log = make_log([0, 1])
        assert staleness_histogram(log) == {-1: {0: 1, 1: 1}}

    def test_multi_worker_counts_stay_separate(self):
        log = make_log([0, 2, 0], workers=[0, 1, 0])
        assert staleness_histogram(log) == {0: {0: 2}, 1: {2: 1}}

    def test_truncated_worker_series_pads_with_minus_one(self):
        # a "worker" series shorter than "staleness" (merged/resumed
        # logs) must not silently drop the trailing commits — they land
        # in the documented -1 bucket instead
        log = TrainLog()
        for step, value in enumerate([0, 1, 2, 3]):
            log.append("staleness", value, step)
        for step, worker in enumerate([0, 1]):
            log.append("worker", worker, step)
        assert staleness_histogram(log) == {
            0: {0: 1}, 1: {1: 1}, -1: {2: 1, 3: 1}}


class TestStalenessSummary:
    def test_empty_log_is_count_zero_with_nan_stats(self):
        summary = staleness_summary(TrainLog())
        assert summary["count"] == 0
        for key in ("mean", "median", "p95", "max"):
            assert math.isnan(summary[key])

    def test_statistics_over_a_run(self):
        log = make_log([0, 1, 1, 2])
        summary = staleness_summary(log)
        assert summary["count"] == 4
        assert summary["mean"] == 1.0
        assert summary["median"] == 1.0
        assert summary["max"] == 2.0

    def test_single_commit(self):
        summary = staleness_summary(make_log([3]))
        assert summary["count"] == 1
        assert summary["mean"] == summary["median"] == summary["max"] \
            == 3.0
        assert summary["p95"] == 3.0


class TestEventTimelineSummary:
    def test_empty_timeline(self):
        summary = event_timeline_summary([])
        assert summary == {"events": 0, "by_kind": {},
                           "arrivals_per_worker": {},
                           "span": (0.0, 0.0)}

    def test_arrivals_grouped_per_worker(self):
        timeline = [
            {"t": 1.0, "kind": "arrival", "worker": 0},
            {"t": 2.0, "kind": "arrival", "worker": 1},
            {"t": 3.0, "kind": "arrival", "worker": 0},
        ]
        summary = event_timeline_summary(timeline)
        assert summary["events"] == 3
        assert summary["by_kind"] == {"arrival": 3}
        assert summary["arrivals_per_worker"] == {0: 2, 1: 1}
        assert summary["span"] == (1.0, 3.0)

    def test_fault_records_counted_by_kind_not_as_arrivals(self):
        timeline = [
            {"t": 0.5, "kind": "arrival", "worker": 0},
            {"t": 4.0, "kind": "crash", "worker": 1},
            {"t": 7.0, "kind": "restart", "worker": 1},
        ]
        summary = event_timeline_summary(timeline)
        assert summary["by_kind"] == {"arrival": 1, "crash": 1,
                                      "restart": 1}
        assert summary["arrivals_per_worker"] == {0: 1}
        assert summary["span"] == (0.5, 7.0)

    def test_arrival_without_worker_metadata(self):
        summary = event_timeline_summary([{"t": 1.0, "kind": "arrival"}])
        assert summary["arrivals_per_worker"] == {-1: 1}
