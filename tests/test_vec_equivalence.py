"""Differential suite: batched replicate execution == serial scalar runs.

The defining contract of :mod:`repro.vec`: for every fused optimizer
kernel, an R-replicate batched run produces per-replicate metrics and
series **bit-identical** to R independent serial runs of the scalar
path over the derived replicate seeds — fused and unfused, with and
without weight decay, across delivery disciplines and workloads.  Also
pins the compatibility guarantees around the new ``replicates`` spec
field: single-replicate specs hash and run exactly as before the field
existed, reproducing the committed ``BENCH_cluster_scenarios.json``
records unchanged.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.vec import supports_batched
from repro.xp import ScenarioSpec, run_scenario

REPO_ROOT = Path(__file__).resolve().parent.parent


def make_spec(replicates=3, **overrides):
    base = dict(name="vec-diff", workload="quadratic_bowl",
                workload_params={"dim": 48, "noise_horizon": 64},
                optimizer="momentum_sgd",
                optimizer_params={"lr": 0.02, "momentum": 0.5},
                delay={"kind": "constant", "delay": 1.0},
                workers=4, reads=40, seed=3, smooth=10,
                replicates=replicates)
    base.update(overrides)
    return ScenarioSpec(**base)


def assert_metrics_identical(batched, scalar, context):
    __tracebackhide__ = True
    assert set(batched) == set(scalar), context
    for key in scalar:
        a, b = batched[key], scalar[key]
        if np.isnan(b):
            assert np.isnan(a), (context, key, a, b)
        else:
            assert a == b, (context, key, a, b)


def assert_series_identical(batched, scalar, context):
    __tracebackhide__ = True
    assert set(batched) == set(scalar), context
    for key in scalar:
        assert np.array_equal(np.asarray(batched[key], dtype=float),
                              np.asarray(scalar[key], dtype=float),
                              equal_nan=True), (context, key)


def check_batched_equals_serial(spec, expect_strategy="batched"):
    __tracebackhide__ = True
    batched = run_scenario(spec)
    assert batched.env["vec_engine"] == expect_strategy, \
        (spec.name, batched.env["vec_engine"])
    assert len(batched.replicate_metrics) == spec.replicates
    for r in range(spec.replicates):
        scalar = run_scenario(spec.replicate_spec(r))
        assert_metrics_identical(batched.replicate_metrics[r],
                                 scalar.metrics, (spec.name, r))
        if r == 0:
            assert_series_identical(batched.series, scalar.series,
                                    spec.name)
    return batched


OPTIMIZER_CASES = [
    ("sgd-plain", "sgd", {"lr": 0.05}),
    ("sgd-wd", "sgd", {"lr": 0.05, "weight_decay": 0.01}),
    ("sgd-fused-wd", "sgd",
     {"lr": 0.05, "weight_decay": 0.01, "fused": True}),
    ("momentum-unfused", "momentum_sgd", {"lr": 0.02, "momentum": 0.5}),
    ("momentum-fused-wd", "momentum_sgd",
     {"lr": 0.02, "momentum": 0.5, "weight_decay": 0.01, "fused": True}),
    ("momentum-nesterov", "momentum_sgd",
     {"lr": 0.02, "momentum": 0.5, "nesterov": True, "fused": True}),
    ("adam-unfused", "adam", {"lr": 0.01}),
    ("adam-fused-amsgrad", "adam",
     {"lr": 0.01, "amsgrad": True, "fused": True}),
    ("yellowfin-unfused", "yellowfin", {"beta": 0.99, "window": 5}),
    ("yellowfin-fused", "yellowfin",
     {"beta": 0.99, "window": 5, "fused": True}),
    ("yellowfin-ablated", "yellowfin",
     {"beta": 0.99, "window": 5, "fused": True, "adaptive_clip": False,
      "zero_debias": False, "log_space_curvature": False}),
    ("closed-loop-unfused", "closed_loop_yellowfin",
     {"staleness": 3, "beta": 0.99, "window": 5, "gamma": 0.01}),
    ("closed-loop-fused", "closed_loop_yellowfin",
     {"staleness": 3, "beta": 0.99, "window": 5, "gamma": 0.01,
      "fused": True}),
]


class TestOptimizerEquivalence:
    """Every batched kernel, bit-identical to R serial scalar runs."""

    @pytest.mark.parametrize("label,optimizer,params", OPTIMIZER_CASES,
                             ids=[c[0] for c in OPTIMIZER_CASES])
    def test_quadratic_workload(self, label, optimizer, params):
        series = ("loss",)
        if optimizer in ("yellowfin", "closed_loop_yellowfin"):
            series = ("loss", "lr", "momentum", "target_momentum")
        if optimizer == "closed_loop_yellowfin":
            series += ("total_momentum", "algorithmic_momentum")
        spec = make_spec(optimizer=optimizer, optimizer_params=params,
                         record_series=series)
        check_batched_equals_serial(spec)

    def test_depth_gated_fifo(self):
        spec = make_spec(queue_staleness=2, updates=30)
        check_batched_equals_serial(spec)

    def test_random_delivery_uses_per_replicate_streams(self):
        spec = make_spec(queue_staleness=3, delivery="random",
                         record_series=("loss", "staleness", "worker"))
        check_batched_equals_serial(spec)

    def test_generic_autograd_workload_with_shards(self):
        spec = make_spec(
            workload="toy_classifier",
            workload_params={"samples": 64, "features": 4, "hidden": 8,
                             "batch_size": 16},
            optimizer="momentum_sgd",
            optimizer_params={"lr": 0.05, "momentum": 0.9, "fused": True},
            num_shards=3, record_series=("loss", "staleness"))
        check_batched_equals_serial(spec)

    def test_derived_seed_specs_without_explicit_seed(self):
        spec = make_spec(seed=None, replicates=2)
        check_batched_equals_serial(spec)


class TestFallbackEquivalence:
    """Non-lockstep scenarios produce the same aggregated record shape
    through the serial path."""

    def test_stochastic_delay_falls_back_serially(self):
        spec = make_spec(
            delay={"kind": "uniform", "low": 0.5, "high": 1.5, "seed": 7})
        assert not supports_batched(spec)
        check_batched_equals_serial(spec, expect_strategy="serial")

    def test_faulty_scenario_falls_back_serially(self):
        spec = make_spec(
            workers=4,
            faults={"scheduled": [{"kind": "crash", "worker": 1,
                                   "time": 3.0, "downtime": 2.0}]})
        assert not supports_batched(spec)
        check_batched_equals_serial(spec, expect_strategy="serial")

    def test_replaced_scalar_optimizer_disables_batched_kernel(self,
                                                               monkeypatch):
        # a user-replaced scalar optimizer must not be shadowed by the
        # built-in batched twin — the engine falls back so records
        # still equal R serial runs of the replacement
        from repro.optim import MomentumSGD
        from repro.registry import registry

        calls = []

        def custom(params, lr=0.05, **kwargs):
            calls.append(1)
            return MomentumSGD(params, lr=lr * 0.5, **kwargs)

        original = registry.get("optimizer", "momentum_sgd")
        monkeypatch.setitem(registry._components["optimizer"],
                            "momentum_sgd",
                            original)  # restore original on teardown
        registry.register("optimizer", "momentum_sgd", custom,
                          skip_positional=1)
        spec = make_spec(replicates=2)
        assert not supports_batched(spec)
        check_batched_equals_serial(spec, expect_strategy="serial")
        assert calls, "replacement factory never ran"

    def test_replaced_scalar_workload_disables_batched_evaluator(self,
                                                                 monkeypatch):
        from repro.registry import registry
        from repro.vec.workloads import has_vec_workload
        from repro.xp import workloads as xp_workloads

        replacement = xp_workloads.toy_classifier
        original = registry.get("workload", "quadratic_bowl")
        monkeypatch.setitem(registry._components["workload"],
                            "quadratic_bowl",
                            original)  # restore original on teardown
        registry.register("workload", "quadratic_bowl",
                          lambda **params: replacement(
                              samples=32, features=4, hidden=4,
                              batch_size=8))
        assert not has_vec_workload("quadratic_bowl")
        spec = make_spec(replicates=2, workload_params={})
        # still batched (the engine's per-replicate adapter runs the
        # replacement), and still bit-identical to serial runs of it
        check_batched_equals_serial(spec)

    def test_diverging_replicate_falls_back_serially(self):
        # lr far above 2/hmax: every replicate blows past the 1e6
        # divergence threshold at its own read, which breaks lockstep
        # and must reroute through the serial path mid-run
        spec = make_spec(
            optimizer_params={"lr": 25.0, "momentum": 0.9, "fused": True},
            reads=60)
        assert supports_batched(spec)
        batched = check_batched_equals_serial(spec,
                                              expect_strategy="serial")
        assert batched.metrics["diverged"] > 0.0


class TestAggregation:
    """Mean/std/CI aggregation over the per-replicate metrics."""

    def test_mean_std_ci_fields(self):
        spec = make_spec(replicates=4)
        result = run_scenario(spec)
        per = result.replicate_metrics
        finals = [m["final_loss"] for m in per]
        mean = sum(finals) / len(finals)
        assert result.metrics["final_loss"] == pytest.approx(mean,
                                                             rel=0, abs=0)
        std = np.std(finals, ddof=1)
        assert result.metrics["final_loss_std"] == pytest.approx(std)
        assert result.metrics["final_loss_ci95"] == pytest.approx(
            1.96 * std / np.sqrt(4))
        assert result.metrics["replicates"] == 4.0

    def test_replicate_prefix_stable_under_count_growth(self):
        small = run_scenario(make_spec(replicates=2))
        large = run_scenario(make_spec(replicates=4))
        assert large.replicate_metrics[:2] == small.replicate_metrics

    def test_result_round_trips_replicate_metrics(self):
        from repro.xp.runner import ScenarioResult

        result = run_scenario(make_spec(replicates=2))
        clone = ScenarioResult.from_dict(result.as_dict())
        assert clone.identity() == result.identity()
        assert clone.replicate_metrics == result.replicate_metrics

    def test_replicated_specs_through_pool_and_cache(self, tmp_path):
        from repro.xp import ParallelRunner, ResultCache

        specs = [make_spec(replicates=2),
                 make_spec(replicates=2, seed=5)]
        serial = ParallelRunner(processes=1).run(specs)
        pooled = ParallelRunner(processes=2).run(specs)
        assert [r.identity() for r in serial] == \
            [r.identity() for r in pooled]

        cache = ResultCache(tmp_path / "cache")
        runner = ParallelRunner(processes=1, cache=cache)
        runner.run(specs)
        rerun = ParallelRunner(processes=1, cache=cache)
        results = rerun.run(specs)
        assert (rerun.hits, rerun.misses) == (2, 0)
        assert [r.identity() for r in results] == \
            [r.identity() for r in serial]


class TestReplicatesOneCompatibility:
    """``replicates=1`` must be indistinguishable from the pre-field
    behavior: same hashes, same seeds, same records."""

    def test_hash_unchanged_by_default_replicates(self):
        spec = make_spec(replicates=1)
        data = spec.as_dict()
        del data["replicates"]
        # a canonical payload built without the field at all
        legacy = json.loads(spec.canonical_json())
        assert "replicates" not in json.dumps(legacy)
        assert spec.content_hash() == make_spec(
            replicates=1).content_hash()

    def test_scalar_path_taken_for_single_replicate(self):
        result = run_scenario(make_spec(replicates=1))
        assert result.replicate_metrics == []
        assert "vec_engine" not in result.env
        assert "replicates" not in result.metrics

    def test_reproduces_committed_cluster_scenario_records(self):
        committed = json.loads(
            (REPO_ROOT / "BENCH_cluster_scenarios.json").read_text())
        base = dict(
            name="cluster_scenarios", workload="toy_classifier",
            workers=4, num_shards=2, reads=240, seed=0, smooth=25,
            delay={"kind": "constant", "delay": 1.0}, replicates=1)
        fixed = ScenarioSpec(
            **base, optimizer="momentum_sgd",
            optimizer_params={"lr": 0.05, "momentum": 0.9,
                              "fused": True})
        closed = ScenarioSpec(
            **base, optimizer="closed_loop_yellowfin",
            optimizer_params={"staleness": 3, "gamma": 0.01, "window": 5,
                              "beta": 0.99, "fused": True})
        assert run_scenario(fixed).metrics["final_loss"] == \
            committed["metrics"]["constant_fixed_final"]
        assert run_scenario(closed).metrics["final_loss"] == \
            committed["metrics"]["constant_closed_final"]


class TestReplicateSeeds:
    def test_replicate_zero_is_the_scenario_seed(self):
        spec = make_spec(replicates=3)
        assert spec.replicate_seeds()[0] == spec.resolved_seed()

    def test_env_seed_is_replicate_zeros_even_when_derived(self):
        # with seed=None, resolved_seed() hashes the replicated spec
        # and matches no run; the record must carry the seed replicate
        # 0 actually used
        spec = make_spec(seed=None, replicates=2)
        result = run_scenario(spec)
        assert result.env["seed"] == spec.replicate_seeds()[0]
        assert result.env["seed"] == \
            run_scenario(spec.replicate_spec(0)).env["seed"]

    def test_seeds_distinct_and_count_independent(self):
        spec8 = make_spec(replicates=8)
        spec4 = make_spec(replicates=4)
        seeds8 = spec8.replicate_seeds()
        assert len(set(seeds8)) == 8
        assert spec4.replicate_seeds() == seeds8[:4]

    def test_replicate_spec_validates_index(self):
        spec = make_spec(replicates=2)
        with pytest.raises(ValueError):
            spec.replicate_spec(2)

    def test_replicates_validated(self):
        with pytest.raises(ValueError):
            make_spec(replicates=0)
