"""Dataset generators and loaders."""

import numpy as np
import pytest

from repro.data import (BatchLoader, BracketedTreebank, MarkovTextCorpus,
                        SequenceLoader, SyntheticImages, SyntheticTranslation,
                        TwoQuadratic, make_cifar100_like, make_figure3_objective)
from repro.data.parsing import CLOSE, OPEN, bracket_f1
from repro.data.translation import bleu_like


class TestTwoQuadratic:
    def test_minimum_at_zero(self):
        obj = make_figure3_objective()
        assert obj.f(0.0) == 0.0
        assert obj.grad(0.0) == 0.0
        for x in (0.5, 2.0, -7.0):
            assert obj.f(x) > 0.0

    def test_c1_continuity_at_break(self):
        obj = make_figure3_objective()
        eps = 1e-9
        assert obj.f(1.0 - eps) == pytest.approx(obj.f(1.0 + eps), abs=1e-5)
        assert obj.grad(1.0 - eps) == pytest.approx(obj.grad(1.0 + eps),
                                                    abs=1e-4)

    def test_curvatures(self):
        obj = make_figure3_objective()
        assert obj.generalized_curvature(0.5) == pytest.approx(1000.0)
        # far out, generalized curvature approaches h_flat = 1
        assert obj.generalized_curvature(1e6) == pytest.approx(1.0, abs=1e-2)

    def test_symmetry(self):
        obj = make_figure3_objective()
        for x in (0.3, 1.5, 9.0):
            assert obj.f(x) == pytest.approx(obj.f(-x))
            assert obj.grad(x) == pytest.approx(-obj.grad(-x))

    def test_validation(self):
        with pytest.raises(ValueError):
            TwoQuadratic(h_sharp=1.0, h_flat=10.0)


class TestSyntheticImages:
    def test_shapes_and_labels(self):
        data = SyntheticImages(num_classes=7, size=6, train_size=64,
                               test_size=16, seed=0)
        assert data.x_train.shape == (64, 3, 6, 6)
        assert data.y_train.shape == (64,)
        assert data.y_train.min() >= 0 and data.y_train.max() < 7

    def test_deterministic_given_seed(self):
        a = SyntheticImages(train_size=32, test_size=8, seed=5)
        b = SyntheticImages(train_size=32, test_size=8, seed=5)
        np.testing.assert_array_equal(a.x_train, b.x_train)

    def test_classes_are_separable_signal(self):
        """Per-class mean images must differ (prototype structure exists)."""
        data = make_cifar100_like(train_size=512, seed=0)
        means = {}
        for c in np.unique(data.y_train)[:2]:
            means[c] = data.x_train[data.y_train == c].mean(axis=0)
        keys = list(means)
        gap = np.abs(means[keys[0]] - means[keys[1]]).mean()
        assert gap > 0.1


class TestMarkovText:
    def test_tokens_in_vocab(self):
        corpus = MarkovTextCorpus(vocab_size=20, length=500, seed=0)
        assert corpus.tokens.min() >= 0
        assert corpus.tokens.max() < 20

    def test_entropy_rate_positive_and_below_uniform(self):
        corpus = MarkovTextCorpus(vocab_size=30, length=500, seed=0)
        h = corpus.entropy_rate
        assert 0.0 < h < np.log(30)

    def test_split(self):
        corpus = MarkovTextCorpus(vocab_size=10, length=100, seed=0)
        train, valid = corpus.split(0.8)
        assert len(train) == 80 and len(valid) == 20


class TestTreebank:
    def test_brackets_balanced(self):
        bank = BracketedTreebank(num_sentences=50, seed=0)
        depth = 0
        for tok in bank.tokens:
            if tok == OPEN:
                depth += 1
            elif tok == CLOSE:
                depth -= 1
            assert depth >= 0
        assert depth == 0

    def test_vocab_bound(self):
        bank = BracketedTreebank(num_terminals=10, num_sentences=20, seed=0)
        assert bank.tokens.max() < bank.vocab_size

    def test_bracket_f1_perfect(self):
        t = np.array([OPEN, 5, CLOSE, OPEN, 6, CLOSE])
        assert bracket_f1(t, t) == pytest.approx(1.0)

    def test_bracket_f1_zero_when_no_structure_predicted(self):
        targets = np.array([OPEN, 5, CLOSE])
        preds = np.array([7, 5, 9])
        assert bracket_f1(preds, targets) == 0.0


class TestTranslation:
    def test_target_is_permuted_source(self):
        data = SyntheticTranslation(vocab_size=11, seq_len=5, train_size=16,
                                    test_size=4, seed=0)
        np.testing.assert_array_equal(data.tgt_train,
                                      data.permutation[data.src_train])

    def test_bleu_perfect_and_degraded(self):
        rng = np.random.default_rng(0)
        ref = rng.integers(0, 10, size=(8, 12))
        assert bleu_like(ref, ref) == pytest.approx(100.0, abs=1e-3)
        noise = rng.integers(0, 10, size=(8, 12))
        assert bleu_like(noise, ref) < 50.0

    def test_bleu_shape_mismatch(self):
        with pytest.raises(ValueError):
            bleu_like(np.zeros((2, 3)), np.zeros((2, 4)))


class TestLoaders:
    def test_batch_loader_cycles(self):
        x = np.arange(10).reshape(10, 1).astype(float)
        y = np.arange(10)
        loader = BatchLoader(x, y, batch_size=4, seed=0)
        seen = set()
        for _ in range(10):
            xb, yb = loader.next_batch()
            assert xb.shape == (4, 1)
            seen.update(yb.tolist())
        assert seen == set(range(10))

    def test_batch_loader_validation(self):
        with pytest.raises(ValueError):
            BatchLoader(np.zeros((4, 1)), np.zeros(3), 2)
        with pytest.raises(ValueError):
            BatchLoader(np.zeros((4, 1)), np.zeros(4), 8)

    def test_sequence_loader_targets_shifted(self):
        tokens = np.arange(100)
        loader = SequenceLoader(tokens, batch_size=2, seq_len=5)
        ids, targets = loader.next_batch()
        assert ids.shape == (5, 2)
        np.testing.assert_array_equal(targets, ids + 1)

    def test_sequence_loader_walks_forward(self):
        tokens = np.arange(100)
        loader = SequenceLoader(tokens, batch_size=2, seq_len=5)
        first, _ = loader.next_batch()
        second, _ = loader.next_batch()
        np.testing.assert_array_equal(second, first + 5)

    def test_sequence_loader_too_short(self):
        with pytest.raises(ValueError):
            SequenceLoader(np.arange(5), batch_size=2, seq_len=10)
