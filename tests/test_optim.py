"""Baseline optimizers: correctness on analytic problems."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.optim import (SGD, Adam, AdaGrad, ExponentialDecay, MomentumSGD,
                         RMSProp, StepDecay, clip_grad_norm,
                         global_grad_norm)


def quadratic_params(value=5.0):
    return Tensor(np.array([value, -value]), requires_grad=True)


def quadratic_grad(p, h=1.0):
    """Gradient of (h/2)||x||^2 loaded straight into p.grad."""
    p.grad = h * p.data.copy()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = quadratic_params()
        opt = SGD([p], lr=0.5)
        for _ in range(50):
            quadratic_grad(p)
            opt.step()
        assert np.abs(p.data).max() < 1e-5

    def test_exact_step(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([p], lr=0.1)
        p.grad = np.array([2.0])
        opt.step()
        np.testing.assert_allclose(p.data, [0.8])

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_requires_grad_enforced(self):
        with pytest.raises(ValueError):
            SGD([Tensor([1.0])], lr=0.1)


class TestMomentumSGD:
    def test_matches_paper_equation(self):
        """Velocity form must equal x_{t+1} = x_t - a g + mu (x_t - x_{t-1})."""
        h, lr, mu = 1.0, 0.3, 0.8
        p = Tensor(np.array([4.0]), requires_grad=True)
        opt = MomentumSGD([p], lr=lr, momentum=mu)
        x_prev = x = 4.0
        for _ in range(20):
            quadratic_grad(p, h)
            opt.step()
            x_next = x - lr * h * x + mu * (x - x_prev)
            x_prev, x = x, x_next
            np.testing.assert_allclose(p.data, [x], atol=1e-12)

    def test_momentum_accelerates_ill_conditioned(self):
        """On kappa=100 quadratic, tuned momentum beats plain GD."""
        h = np.array([1.0, 100.0])
        kappa = 100.0
        mu = ((np.sqrt(kappa) - 1) / (np.sqrt(kappa) + 1)) ** 2
        lr_mom = (1 + np.sqrt(mu)) ** 2 / h.max()

        p1 = Tensor(np.ones(2), requires_grad=True)
        gd = SGD([p1], lr=2.0 / (h.max() + h.min()))
        p2 = Tensor(np.ones(2), requires_grad=True)
        mom = MomentumSGD([p2], lr=lr_mom, momentum=mu)
        for _ in range(80):
            p1.grad = h * p1.data
            gd.step()
            p2.grad = h * p2.data
            mom.step()
        assert np.abs(p2.data).max() < np.abs(p1.data).max()

    def test_nesterov_differs_from_polyak(self):
        p1 = Tensor(np.array([1.0]), requires_grad=True)
        p2 = Tensor(np.array([1.0]), requires_grad=True)
        polyak = MomentumSGD([p1], lr=0.1, momentum=0.9)
        nesterov = MomentumSGD([p2], lr=0.1, momentum=0.9, nesterov=True)
        for _ in range(3):
            quadratic_grad(p1)
            polyak.step()
            quadratic_grad(p2)
            nesterov.step()
        assert not np.allclose(p1.data, p2.data)

    def test_set_hyperparams(self):
        p = quadratic_params()
        opt = MomentumSGD([p], lr=0.1, momentum=0.5)
        opt.set_hyperparams(0.2, 0.7)
        assert opt.lr == 0.2 and opt.momentum == 0.7


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_params()
        opt = Adam([p], lr=0.5)
        for _ in range(300):
            quadratic_grad(p)
            opt.step()
        assert np.abs(p.data).max() < 1e-3

    def test_first_step_is_lr_sized(self):
        """Bias correction => first update has magnitude ~lr regardless of
        gradient scale."""
        for scale in (1e-4, 1.0, 1e4):
            p = Tensor(np.array([1.0]), requires_grad=True)
            opt = Adam([p], lr=0.01)
            p.grad = np.array([scale])
            opt.step()
            np.testing.assert_allclose(abs(1.0 - p.data[0]), 0.01, rtol=1e-3)

    def test_negative_beta1_allowed(self):
        p = quadratic_params()
        opt = Adam([p], lr=0.1, beta1=-0.2)
        quadratic_grad(p)
        opt.step()  # must not raise

    def test_beta_validation(self):
        p = quadratic_params()
        with pytest.raises(ValueError):
            Adam([p], beta1=1.5)
        with pytest.raises(ValueError):
            Adam([p], beta2=1.0)


class TestAdaGradRMSProp:
    def test_adagrad_converges(self):
        p = quadratic_params()
        opt = AdaGrad([p], lr=1.0)
        for _ in range(400):
            quadratic_grad(p)
            opt.step()
        assert np.abs(p.data).max() < 0.05

    def test_adagrad_lr_shrinks(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = AdaGrad([p], lr=0.1)
        p.grad = np.array([1.0])
        opt.step()
        step1 = abs(1.0 - p.data[0])
        before = p.data[0]
        p.grad = np.array([1.0])
        opt.step()
        step2 = abs(before - p.data[0])
        assert step2 < step1

    def test_rmsprop_converges(self):
        p = quadratic_params()
        opt = RMSProp([p], lr=0.05)
        for _ in range(500):
            quadratic_grad(p)
            opt.step()
        assert np.abs(p.data).max() < 0.05


class TestSchedulers:
    def test_exponential_decay(self):
        p = quadratic_params()
        opt = SGD([p], lr=1.0)
        sched = ExponentialDecay(opt, gamma=0.5)
        sched.epoch_end()
        assert opt.lr == pytest.approx(0.5)
        sched.epoch_end()
        assert opt.lr == pytest.approx(0.25)

    def test_step_decay_waits(self):
        p = quadratic_params()
        opt = SGD([p], lr=1.0)
        sched = StepDecay(opt, gamma=0.9, start_epoch=2)
        sched.epoch_end()
        sched.epoch_end()
        assert opt.lr == pytest.approx(1.0)
        sched.epoch_end()
        assert opt.lr == pytest.approx(0.9)


class TestGradClip:
    def test_global_norm(self):
        p1 = Tensor(np.zeros(3), requires_grad=True)
        p2 = Tensor(np.zeros(4), requires_grad=True)
        p1.grad = np.array([3.0, 0.0, 0.0])
        p2.grad = np.array([0.0, 4.0, 0.0, 0.0])
        assert global_grad_norm([p1, p2]) == pytest.approx(5.0)

    def test_clip_rescales(self):
        p = Tensor(np.zeros(2), requires_grad=True)
        p.grad = np.array([3.0, 4.0])
        pre = clip_grad_norm([p], 1.0)
        assert pre == pytest.approx(5.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_clip_noop_below_threshold(self):
        p = Tensor(np.zeros(2), requires_grad=True)
        p.grad = np.array([0.3, 0.4])
        clip_grad_norm([p], 1.0)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])

    def test_missing_grads_are_zero(self):
        p = Tensor(np.zeros(2), requires_grad=True)
        assert global_grad_norm([p]) == 0.0
