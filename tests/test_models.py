"""Model forward shapes and short-horizon trainability."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F
from repro.models import (LSTMLanguageModel, MLP, ResNet, Seq2Seq,
                          TiedLSTMLanguageModel, make_resnet_cifar10,
                          make_resnet_cifar100)
from repro.models.lstm_lm import perplexity
from repro.optim import MomentumSGD


class TestMLP:
    def test_shapes(self):
        model = MLP([4, 8, 3], seed=0)
        assert model(Tensor(np.zeros((5, 4)))).shape == (5, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            MLP([4])


class TestResNet:
    def test_cifar10_forward(self):
        model = make_resnet_cifar10(width=2, seed=0)
        out = model(np.zeros((2, 3, 8, 8)))
        assert out.shape == (2, 10)

    def test_cifar100_forward(self):
        model = make_resnet_cifar100(width=2, seed=0)
        out = model(np.zeros((2, 3, 8, 8)))
        assert out.shape == (2, 100)

    def test_shortcut_projection_used_on_stride(self):
        model = make_resnet_cifar10(width=2, blocks_per_stage=1, seed=0)
        strided = [b for b in model.blocks if b.shortcut is not None]
        assert len(strided) >= 2  # the two stage transitions

    def test_gradients_reach_stem(self):
        model = make_resnet_cifar10(width=2, seed=0)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 8, 8))
        loss = F.cross_entropy(model(x), np.array([1, 2]))
        loss.backward()
        assert model.stem.weight.grad is not None
        assert np.abs(model.stem.weight.grad).max() > 0

    def test_trains_briefly(self):
        rng = np.random.default_rng(0)
        model = make_resnet_cifar10(num_classes=4, width=2, seed=0)
        x = rng.normal(size=(16, 3, 8, 8))
        y = rng.integers(0, 4, 16)
        x[np.arange(16), 0, 0, 0] += 3.0 * y  # inject learnable signal
        opt = MomentumSGD(model.parameters(), lr=0.05, momentum=0.9)
        losses = []
        for _ in range(15):
            model.zero_grad()
            loss = F.cross_entropy(model(x), y)
            loss.backward()
            opt.step()
            losses.append(float(loss.data))
        assert losses[-1] < losses[0]


class TestLSTMLM:
    def test_logits_shape(self):
        model = LSTMLanguageModel(vocab_size=20, embed_dim=8, hidden_size=12,
                                  seed=0)
        ids = np.zeros((6, 3), dtype=int)
        logits, state = model(ids)
        assert logits.shape == (18, 20)
        assert len(state) == 2

    def test_loss_decreases(self):
        rng = np.random.default_rng(0)
        model = LSTMLanguageModel(vocab_size=10, embed_dim=8, hidden_size=16,
                                  num_layers=1, seed=0)
        ids = rng.integers(0, 10, size=(8, 4))
        targets = (ids + 1) % 10  # deterministic successor task
        opt = MomentumSGD(model.parameters(), lr=0.5, momentum=0.9)
        losses = []
        for _ in range(30):
            model.zero_grad()
            loss, _ = model.loss(ids, targets)
            loss.backward()
            opt.step()
            losses.append(float(loss.data))
        assert losses[-1] < 0.5 * losses[0]

    def test_tied_model_shares_weights(self):
        model = TiedLSTMLanguageModel(vocab_size=15, embed_dim=8, seed=0)
        names = [n for n, _ in model.named_parameters()]
        assert not any("head" in n for n in names)
        logits, _ = model(np.zeros((3, 2), dtype=int))
        assert logits.shape == (6, 15)

    def test_perplexity(self):
        assert perplexity(0.0) == pytest.approx(1.0)
        assert perplexity(np.log(50.0)) == pytest.approx(50.0)
        assert np.isfinite(perplexity(1000.0))


class TestSeq2Seq:
    def test_forward_shape(self):
        model = Seq2Seq(vocab_size=12, embed_dim=6, hidden_size=10, seed=0)
        src = np.zeros((5, 3), dtype=int)
        tgt = np.zeros((5, 3), dtype=int)
        logits = model(src, tgt)
        assert logits.shape == (15, 12)

    def test_loss_finite_and_trains(self):
        rng = np.random.default_rng(0)
        model = Seq2Seq(vocab_size=8, embed_dim=6, hidden_size=10, seed=0)
        src = rng.integers(0, 8, size=(4, 6))
        tgt = (src + 1) % 8
        opt = MomentumSGD(model.parameters(), lr=0.5, momentum=0.9)
        losses = []
        for _ in range(25):
            model.zero_grad()
            loss = model.loss(src, tgt)
            loss.backward()
            opt.step()
            losses.append(float(loss.data))
        assert losses[-1] < losses[0]

    def test_gain_scales_recurrent_weights(self):
        base = Seq2Seq(vocab_size=8, seed=0)
        hot = Seq2Seq(vocab_size=8, gain=3.0, seed=0)
        np.testing.assert_allclose(
            hot.encoder.cells[0].weight_hh.data,
            3.0 * base.encoder.cells[0].weight_hh.data)

    def test_greedy_decode_shape(self):
        model = Seq2Seq(vocab_size=9, embed_dim=6, hidden_size=10, seed=0)
        src = np.zeros((5, 2), dtype=int)
        out = model.greedy_decode(src, length=5)
        assert out.shape == (5, 2)
        assert out.dtype == np.int64
