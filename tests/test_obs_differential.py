"""Zero-perturbation gate: observed runs change no bits, ever.

One fixed spec runs through every backend — ``serial``, ``cluster``,
``parallel``, ``vec``, and (where the platform supports real worker
processes) ``mp`` — once unobserved and once under a full
:mod:`repro.obs` session, and the deterministic identities must agree
exactly.  Instrumentation only ever reads runtime state; if a hook
ever touches an RNG or reorders an event, this suite is what catches
it.  Also pins the session-scoping contract around :func:`run`:
``obs=True`` attaches a report and leaves nothing active afterwards.
"""

import pytest

from repro.mp import mp_available
from repro.obs import ObsSession, Tracer, active
from repro.run import run
from repro.xp import ScenarioSpec

BACKENDS = ("serial", "cluster", "parallel", "vec") + (
    ("mp",) if mp_available() else ())


def lockstep_spec(**overrides):
    base = dict(name="xobs", workload="quadratic_bowl",
                workload_params={"dim": 24, "noise_horizon": 32},
                optimizer="momentum_sgd",
                optimizer_params={"lr": 0.02, "momentum": 0.5},
                delay={"kind": "constant", "delay": 1.0},
                workers=3, reads=30, seed=11, smooth=5)
    base.update(overrides)
    return ScenarioSpec(**base)


class TestBitIdentityObservedVsNot:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_identities_unchanged_by_observation(self, backend):
        spec = lockstep_spec()
        plain = run(spec, backend=backend)
        observed = run(spec, backend=backend, obs=True)
        assert observed.identities() == plain.identities(), backend
        assert plain.obs is None
        assert observed.obs is not None

    def test_cluster_machinery_unchanged_by_observation(self):
        # stochastic delays + a scheduled crash drive the delay
        # sampler, the fault injector, and the staleness accounting —
        # the three hooks most likely to perturb RNG state
        spec = lockstep_spec(
            delay={"kind": "uniform", "low": 0.5, "high": 1.5,
                   "seed": 5},
            faults={"seed": 9, "scheduled": [
                {"kind": "crash", "worker": 1, "time": 4.0,
                 "downtime": 3.0}]})
        plain = run(spec, backend="cluster")
        observed = run(spec, backend="cluster", obs=True)
        assert observed.identities() == plain.identities()

    def test_replicated_vec_unchanged_by_observation(self):
        spec = lockstep_spec(replicates=3)
        plain = run(spec, backend="vec")
        observed = run(spec, backend="vec", obs=True)
        assert observed.identities() == plain.identities()
        assert observed.result.env["vec_engine"] == "batched"


class TestSessionPlumbing:
    def test_report_holds_all_three_components(self):
        outcome = run(lockstep_spec(), backend="serial", obs=True)
        assert set(outcome.obs) == {"tracer", "metrics", "profiler"}

    def test_nothing_left_active_after_run(self):
        run(lockstep_spec(), backend="serial", obs=True)
        assert active() is None

    def test_explicit_session_is_used_and_populated(self):
        session = ObsSession(tracer=Tracer())
        outcome = run(lockstep_spec(), backend="cluster", obs=session)
        assert len(session.tracer) > 0
        assert "optimizer" in session.tracer.categories()
        # partial session: only the provided components report
        assert set(outcome.obs) == {"tracer"}

    def test_obs_excluded_from_identity_and_rejects_junk(self):
        outcome = run(lockstep_spec(), backend="serial", obs=True)
        for identity in outcome.identities():
            assert "obs" not in identity
        with pytest.raises(TypeError):
            run(lockstep_spec(), backend="serial", obs=object())

    def test_disabled_spellings_are_equivalent(self):
        for spelling in (None, False, "disabled"):
            outcome = run(lockstep_spec(), backend="serial",
                          obs=spelling)
            assert outcome.obs is None
