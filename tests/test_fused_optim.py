"""Fused update kernels: trajectory equivalence and packing semantics."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import FlatParams, Tensor, functional as F
from repro.core import ClosedLoopYellowFin, YellowFin
from repro.optim import SGD, Adam, AdaGrad, MomentumSGD, RMSProp


def make_problem(seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(24, 6))
    y = rng.integers(0, 3, 24)
    model = nn.Sequential(nn.Linear(6, 16, seed=0), nn.ReLU(),
                          nn.Linear(16, 3, seed=1))

    def loss_fn():
        return F.cross_entropy(model(Tensor(x)), y)

    return model, loss_fn


def run_trajectory(opt_factory, steps=25):
    model, loss_fn = make_problem()
    opt = opt_factory(model.parameters())
    losses = []
    for _ in range(steps):
        model.zero_grad()
        loss = loss_fn()
        loss.backward()
        opt.step()
        losses.append(float(loss.data))
    flat = np.concatenate([p.data.reshape(-1) for p in model.parameters()])
    return np.asarray(losses), flat, opt


ELEMENTWISE = [
    ("sgd", lambda f: (lambda p: SGD(p, lr=0.1, weight_decay=1e-3,
                                     fused=f))),
    ("momentum", lambda f: (lambda p: MomentumSGD(p, lr=0.1, momentum=0.9,
                                                  fused=f))),
    ("nesterov", lambda f: (lambda p: MomentumSGD(p, lr=0.1, momentum=0.9,
                                                  nesterov=True, fused=f))),
    ("adam", lambda f: (lambda p: Adam(p, lr=1e-2, amsgrad=True, fused=f))),
    ("adagrad", lambda f: (lambda p: AdaGrad(p, lr=0.05, fused=f))),
    ("rmsprop", lambda f: (lambda p: RMSProp(p, lr=1e-2, fused=f))),
]

GLOBAL_REDUCTION = [
    ("yellowfin", lambda f: (lambda p: YellowFin(p, window=5, beta=0.9,
                                                 fused=f))),
    ("closed_loop", lambda f: (lambda p: ClosedLoopYellowFin(
        p, staleness=0, window=5, beta=0.9, fused=f))),
]


class TestTrajectoryEquivalence:
    @pytest.mark.parametrize("name,factory", ELEMENTWISE,
                             ids=[n for n, _ in ELEMENTWISE])
    def test_elementwise_rules_bitwise_identical(self, name, factory):
        """Pure elementwise updates agree bit-for-bit with fusion."""
        _, x_ref, _ = run_trajectory(factory(False))
        _, x_fused, _ = run_trajectory(factory(True))
        np.testing.assert_array_equal(x_ref, x_fused)

    @pytest.mark.parametrize("name,factory", GLOBAL_REDUCTION,
                             ids=[n for n, _ in GLOBAL_REDUCTION])
    def test_global_reduction_rules_match_to_float_eps(self, name, factory):
        """YellowFin's global norms change summation order under fusion;
        trajectories agree to floating-point tolerance."""
        l_ref, x_ref, _ = run_trajectory(factory(False))
        l_fused, x_fused, _ = run_trajectory(factory(True))
        np.testing.assert_allclose(x_ref, x_fused, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(l_ref, l_fused, rtol=1e-9, atol=1e-12)


class TestCheckpointInterop:
    def test_fused_checkpoint_restores_into_per_tensor(self):
        """State dicts are mode-agnostic: fused state loads into a
        per-tensor optimizer and continues identically."""
        _, _, fused_opt = run_trajectory(
            lambda p: MomentumSGD(p, lr=0.1, momentum=0.9, fused=True),
            steps=10)
        state = fused_opt.state_dict()

        model, loss_fn = make_problem()
        opt = MomentumSGD(model.parameters(), lr=0.1, momentum=0.9,
                          fused=False)
        opt.load_state_dict(state)
        velocity = state["extra"]["velocity"]
        assert isinstance(velocity, list)
        for v_loaded, v_saved in zip(opt._velocity, velocity):
            np.testing.assert_array_equal(v_loaded, v_saved)

    def test_per_tensor_checkpoint_restores_into_fused(self):
        _, _, ref_opt = run_trajectory(
            lambda p: Adam(p, lr=1e-2, fused=False), steps=10)
        state = ref_opt.state_dict()

        model, loss_fn = make_problem()
        opt = Adam(model.parameters(), lr=1e-2, fused=True)
        opt.load_state_dict(state)
        np.testing.assert_array_equal(opt._m, opt._flat.gather(
            state["extra"]["m"]))


class TestFlatParams:
    def test_views_alias_buffer_both_ways(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([[3.0], [4.0]], requires_grad=True)
        flat = FlatParams([a, b])
        np.testing.assert_array_equal(flat.buffer, [1.0, 2.0, 3.0, 4.0])
        flat.buffer *= 2.0
        np.testing.assert_array_equal(a.data, [2.0, 4.0])
        a.data[0] = -1.0
        assert flat.buffer[0] == -1.0

    def test_gather_handles_missing_grads(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        flat = FlatParams([a, b])
        a.grad = np.array([5.0, 6.0])
        b.grad = None
        out = flat.gather_grads()
        np.testing.assert_array_equal(out, [5.0, 6.0, 0.0])

    def test_repack_after_data_rebinding(self):
        """load_state_dict-style rebinding is detected and healed, keeping
        the rebound values."""
        model, _ = make_problem()
        params = model.parameters()
        flat = FlatParams(params)
        assert flat.packed
        params[0].data = np.full_like(params[0].data, 7.0)
        assert not flat.packed
        flat.ensure_packed()
        assert flat.packed
        np.testing.assert_array_equal(flat.view(0),
                                      np.full(params[0].size, 7.0))

    def test_fused_optimizer_survives_load_state_dict(self):
        """A model checkpoint restore mid-training must not desync the
        fused buffer from the parameters."""
        model, loss_fn = make_problem()
        snapshot = model.state_dict()
        opt = SGD(model.parameters(), lr=0.1, fused=True)
        for _ in range(3):
            model.zero_grad()
            loss = loss_fn()
            loss.backward()
            opt.step()
        model.load_state_dict(snapshot)  # rebinds every p.data
        model.zero_grad()
        loss = loss_fn()
        loss.backward()
        opt.step()  # must repack, not clobber the restored values
        ref = snapshot[next(iter(snapshot))]
        assert np.isfinite(float(loss.data))
        for p in model.parameters():
            assert p.data.base is opt._flat.buffer or \
                np.shares_memory(p.data, opt._flat.buffer)

    def test_empty_and_integer_rejected(self):
        with pytest.raises(ValueError):
            FlatParams([])
        int_tensor = Tensor(np.array([1, 2, 3]))
        int_tensor.requires_grad = True
        with pytest.raises(TypeError):
            FlatParams([int_tensor])

    def test_fused_flag_validation(self):
        model, _ = make_problem()
        opt = SGD(model.parameters(), lr=0.1, fused=True)
        assert opt.fused and opt._flat is not None
        assert opt._flat.size == model.num_parameters()
