"""Differential suite: fleet worker-axis execution == serial runs.

The defining contract of :mod:`repro.fleet`: for every spec in the
fleet-eligible class — single replicate, vec optimizer kernel,
deterministic delay/fault configuration — the engine's record identity
(name, spec hash, metrics, series) is **bit-identical** to the serial
``ClusterRuntime`` path, across optimizers, delay models, shard
counts, delivery disciplines, fault plans, and both evaluation
strategies (deferred ``quadratic_bowl``, eager autograd workloads).
Also pins the surrounding machinery: the ``supports_fleet`` predicate,
transparent serial fallback with the strategy recorded in ``env``,
divergence re-runs, fleet-topology expansion (idempotence, seed/hash
stability, fault groups, accounting), backend auto-selection, and the
``sample_many`` batched-draw contract on the delay catalog.
"""

import numpy as np
import pytest

from repro.cluster.delays import (ConstantDelay, ExponentialDelay,
                                  HeterogeneousDelay, ParetoDelay,
                                  TraceReplayDelay, UniformDelay,
                                  WorkerClassDelay)
from repro.fleet import (FleetEngine, build_topology, execute_fleet,
                         expand_fleet, fleet_accounting, supports_fleet)
from repro.run.api import select_backend
from repro.run.backends import execute_scalar
from repro.utils.deprecation import internal_calls
from repro.xp import ScenarioSpec

SERIES = ("loss", "staleness", "worker", "sim_time", "crash", "restart")


def make_spec(**overrides):
    base = dict(name="fleet-diff", workload="quadratic_bowl",
                workload_params={"dim": 32, "noise_horizon": 48},
                optimizer="sgd", optimizer_params={"lr": 0.02},
                delay={"kind": "constant", "delay": 1.0},
                workers=6, reads=70, seed=3, record_series=SERIES)
    base.update(overrides)
    return ScenarioSpec(**base)


def check_fleet_equals_serial(spec, expect_engine="fleet"):
    __tracebackhide__ = True
    serial = execute_scalar(spec)
    fleet = execute_fleet(spec, strategy="fleet")
    assert fleet.env["fleet_engine"] == expect_engine, spec.name
    assert fleet.identity() == serial.identity(), spec.name
    return serial, fleet


class TestDifferentialMatrix:
    @pytest.mark.parametrize("optimizer,params", [
        ("sgd", {"lr": 0.02}),
        ("momentum_sgd", {"lr": 0.01, "momentum": 0.5}),
        ("adam", {"lr": 0.05}),
        ("yellowfin", {"window": 5, "beta": 0.9}),
        ("closed_loop_yellowfin", {"window": 5, "beta": 0.9}),
    ])
    def test_optimizers(self, optimizer, params):
        extra = ()
        if optimizer in ("yellowfin", "closed_loop_yellowfin"):
            extra = ("lr", "momentum", "target_momentum")
        check_fleet_equals_serial(make_spec(
            optimizer=optimizer, optimizer_params=params,
            record_series=SERIES + extra))

    @pytest.mark.parametrize("delay", [
        {"kind": "constant", "delay": 0.7},
        {"kind": "uniform", "low": 0.4, "high": 1.6, "seed": 5},
        {"kind": "exponential", "mean": 1.1, "seed": 6},
        {"kind": "pareto", "alpha": 3.0, "scale": 0.8, "seed": 7},
        {"kind": "heterogeneous", "models": [
            {"kind": "constant", "delay": 1.0},
            {"kind": "uniform", "low": 0.2, "high": 2.0, "seed": 8},
            {"kind": "exponential", "mean": 0.9, "seed": 9}]},
        {"kind": "worker_classes", "counts": [2, 4], "models": [
            {"kind": "constant", "delay": 0.5},
            {"kind": "pareto", "alpha": 2.5, "scale": 0.6, "seed": 10}]},
        {"kind": "trace", "trace": {"delays": [0.5, 1.5, 0.9, 2.0]}},
        {"kind": "trace", "trace": {"workers": {
            "0": [0.5, 1.1], "1": [0.8], "2": [1.4, 0.6, 2.0]}}},
    ])
    def test_delay_models(self, delay):
        check_fleet_equals_serial(make_spec(delay=delay))

    @pytest.mark.parametrize("num_shards", [1, 3])
    @pytest.mark.parametrize("shard_policy", ["round_robin", "hash"])
    def test_shard_counts(self, num_shards, shard_policy):
        check_fleet_equals_serial(make_spec(
            num_shards=num_shards, shard_policy=shard_policy,
            optimizer="adam", optimizer_params={"lr": 0.05}))

    def test_queue_staleness_gate(self):
        check_fleet_equals_serial(make_spec(queue_staleness=3))

    def test_random_delivery(self):
        check_fleet_equals_serial(make_spec(
            delivery="random", queue_staleness=2, workers=5))

    def test_eager_autograd_workload(self):
        # toy_classifier has no deferred evaluator: the engine runs it
        # through the eager ModelReplicateAdapter, losses at read time
        spec = make_spec(workload="toy_classifier", workload_params={},
                         optimizer_params={"lr": 0.1}, reads=40,
                         workers=4)
        check_fleet_equals_serial(spec)

    def test_updates_budget(self):
        check_fleet_equals_serial(make_spec(reads=80, updates=50))

    def test_scheduled_faults(self):
        check_fleet_equals_serial(make_spec(
            reads=90, faults={"scheduled": [
                {"kind": "crash", "worker": 2, "time": 3.0,
                 "downtime": 4.0},
                {"kind": "straggler", "worker": 1, "start": 2.0,
                 "duration": 6.0, "factor": 3.0},
                {"kind": "pause", "start": 5.0, "duration": 2.5}]}))

    def test_seeded_random_faults(self):
        serial, _ = check_fleet_equals_serial(make_spec(
            workers=8, reads=120,
            faults={"crash_prob": 0.03, "straggler_prob": 0.05,
                    "pause_prob": 0.02, "seed": 11}))
        assert len(serial.series.get("crash", [])) > 0

    def test_fleet_scale_worker_count(self):
        check_fleet_equals_serial(make_spec(
            workers=96, reads=300, optimizer_params={"lr": 0.004}))


class TestEngineModes:
    def test_round_mode_for_constant_fifo(self):
        with internal_calls():
            engine = FleetEngine(make_spec())
        assert engine.mode == "round"

    @pytest.mark.parametrize("overrides", [
        {"delay": {"kind": "uniform", "low": 0.5, "high": 1.5,
                   "seed": 2}},
        {"queue_staleness": 1},
        {"delivery": "random"},
        {"faults": {"scheduled": [
            {"kind": "crash", "worker": 0, "time": 1.0}]}},
        {"workload": "toy_classifier", "workload_params": {}},
    ])
    def test_event_mode_otherwise(self, overrides):
        with internal_calls():
            engine = FleetEngine(make_spec(**overrides))
        assert engine.mode == "event"

    def test_direct_construction_warns(self):
        with pytest.deprecated_call():
            FleetEngine(make_spec())

    def test_ineligible_spec_rejected(self):
        spec = make_spec(delay={"kind": "uniform", "low": 0.5,
                                "high": 1.5})
        with internal_calls(), pytest.raises(ValueError,
                                             match="fleet-eligible"):
            FleetEngine(spec)


class TestSupportsFleet:
    def test_eligible(self):
        assert supports_fleet(make_spec())

    def test_unseeded_stochastic_delay_ineligible(self):
        assert not supports_fleet(make_spec(
            delay={"kind": "uniform", "low": 0.5, "high": 1.5}))

    def test_unseeded_nested_delay_ineligible(self):
        assert not supports_fleet(make_spec(
            delay={"kind": "heterogeneous", "models": [
                {"kind": "constant", "delay": 1.0},
                {"kind": "exponential", "mean": 1.0}]}))

    def test_unseeded_fault_rates_ineligible(self):
        assert not supports_fleet(make_spec(
            faults={"crash_prob": 0.1}))

    def test_zero_rates_need_no_seed(self):
        assert supports_fleet(make_spec(
            faults={"crash_prob": 0.0, "scheduled": [
                {"kind": "crash", "worker": 0, "time": 2.0}]}))

    def test_multi_replicate_ineligible(self):
        assert not supports_fleet(make_spec(replicates=3))

    def test_topology_judged_on_expanded_form(self):
        spec = make_spec(workers=1, fleet={"classes": [
            {"name": "a", "count": 3,
             "delay": {"kind": "constant", "delay": 1.0}},
            {"name": "b", "count": 2,
             "delay": {"kind": "uniform", "low": 1.0, "high": 2.0,
                       "seed": 4}}]})
        assert supports_fleet(spec)


class TestFallback:
    def test_ineligible_spec_falls_back_transparently(self):
        # unseeded delay: ineligible (and unreproducible even
        # serially), so only the routing is assertable — the result
        # must come from the serial engine with the strategy recorded
        spec = make_spec(delay={"kind": "uniform", "low": 0.5,
                                "high": 1.5, "seed": None})
        assert not supports_fleet(spec)
        fleet = execute_fleet(spec, strategy="fleet")
        assert fleet.env["fleet_engine"] == "serial"
        assert fleet.metrics["reads"] == 70.0

    def test_serial_strategy_forces_fallback(self):
        result = execute_fleet(make_spec(), strategy="serial")
        assert result.env["fleet_engine"] == "serial"
        assert result.identity() == execute_scalar(make_spec()).identity()

    def test_divergence_falls_back_to_exact_serial_stop(self):
        # the scalar default lr diverges under ~15-step staleness; the
        # deferred engine only sees it at flush time and must re-run
        spec = make_spec(optimizer="momentum_sgd",
                         optimizer_params={}, workers=16, reads=200,
                         workload_params={}, record_series=SERIES
                         + ("diverged",))
        serial = execute_scalar(spec)
        assert serial.metrics["diverged"] == 1.0
        fleet = execute_fleet(spec, strategy="fleet")
        assert fleet.env["fleet_engine"] == "serial"
        assert fleet.identity() == serial.identity()

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            execute_fleet(make_spec(), strategy="warp")


class TestTopology:
    FLEET = {"classes": [
        {"name": "fast", "count": 4,
         "delay": {"kind": "constant", "delay": 0.5},
         "cost_per_hour": 3.0, "power_watts": 350.0},
        {"name": "slow", "count": 3,
         "delay": {"kind": "uniform", "low": 1.0, "high": 2.0,
                   "seed": 5},
         "cost_per_hour": 1.0, "power_watts": 200.0}],
        "fault_groups": [
            {"class": "slow", "count": 2, "time": 4.0,
             "downtime": 3.0}]}

    def test_expansion_fields(self):
        spec = make_spec(workers=1, fleet=self.FLEET)
        expanded = expand_fleet(spec)
        assert expanded.workers == 7
        assert expanded.delay["kind"] == "worker_classes"
        assert expanded.delay["counts"] == [4, 3]
        crashes = expanded.faults["scheduled"]
        # group crashes target the first 2 workers of the slow block
        assert [c["worker"] for c in crashes] == [4, 5]
        assert all(c["downtime"] == 3.0 for c in crashes)
        assert expanded.fleet == spec.fleet  # kept for accounting

    def test_expansion_pins_resolved_seed(self):
        spec = make_spec(workers=1, seed=None, fleet=self.FLEET)
        expanded = expand_fleet(spec)
        assert expanded.seed == spec.resolved_seed()

    def test_expansion_idempotent(self):
        spec = make_spec(workers=1, fleet=self.FLEET)
        once = expand_fleet(spec)
        twice = expand_fleet(once)
        assert once == twice
        assert once.content_hash() == twice.content_hash()

    def test_explicit_worker_ids_group(self):
        topology = build_topology({"classes": [
            {"name": "a", "count": 5,
             "delay": {"kind": "constant", "delay": 1.0}}],
            "fault_groups": [{"workers": [1, 3], "time": 2.0}]})
        crashes = topology.scheduled_faults()
        assert [c["worker"] for c in crashes] == [1, 3]
        assert all(c["downtime"] == 5.0 for c in crashes)

    @pytest.mark.parametrize("config,match", [
        ({}, "non-empty"),
        ({"classes": [{"name": "a", "count": 0,
                       "delay": {"kind": "constant"}}]}, "count"),
        ({"classes": [{"name": "a", "count": 1,
                       "delay": {"kind": "warp"}}]}, "delay kind"),
        ({"classes": [{"name": "a", "count": 1,
                       "delay": {"kind": "constant"}, "rate": 1}]},
         "unknown fleet class keys"),
        ({"classes": [{"name": "a", "count": 1,
                       "delay": {"kind": "constant"}}],
          "fault_groups": [{"time": 1.0}]}, "exactly one"),
        ({"classes": [{"name": "a", "count": 1,
                       "delay": {"kind": "constant"}}],
          "fault_groups": [{"class": "b", "time": 1.0}]},
         "unknown class"),
    ])
    def test_validation_errors(self, config, match):
        with pytest.raises(ValueError, match=match):
            build_topology(config)

    def test_spec_validation_surfaces_topology_errors(self):
        spec = make_spec(fleet={"classes": []})
        with pytest.raises(ValueError, match="fleet topology"):
            spec.validate_components()

    def test_accounting_math(self):
        accounting = fleet_accounting(self.FLEET, sim_time=3600.0)
        fast, slow = accounting["classes"]
        assert fast["cost"] == pytest.approx(4 * 3.0)
        assert fast["energy_wh"] == pytest.approx(4 * 350.0)
        assert slow["cost"] == pytest.approx(3 * 1.0)
        assert accounting["total_cost"] == pytest.approx(15.0)
        assert accounting["total_energy_wh"] == pytest.approx(2000.0)

    def test_topology_run_matches_serial_and_reports_accounting(self):
        spec = make_spec(workers=1, reads=60, fleet=self.FLEET)
        serial = execute_scalar(spec)
        fleet = execute_fleet(spec, strategy="fleet")
        assert fleet.identity() == serial.identity()
        accounting = fleet.env["fleet_accounting"]
        assert accounting["total_cost"] > 0.0
        assert [c["name"] for c in accounting["classes"]] == \
            ["fast", "slow"]
        # the fallback path prices the run too (from the sim_time
        # series), so accounting never depends on the engine taken
        fallback = execute_fleet(spec, strategy="serial")
        assert fallback.env["fleet_accounting"]["total_cost"] > 0.0


class TestBackendSelection:
    def test_fleet_selected_at_scale(self):
        name, reason = select_backend([make_spec(workers=64)])
        assert name == "fleet"
        assert "worker axis" in reason

    def test_small_clusters_keep_existing_selection(self):
        name, _ = select_backend([make_spec(workers=6)])
        assert name != "fleet"

    def test_topology_spec_selects_fleet_regardless_of_size(self):
        spec = make_spec(workers=1, fleet=TestTopology.FLEET)
        name, _ = select_backend([expand_fleet(spec)])
        assert name == "fleet"

    def test_ineligible_scale_spec_not_fleet(self):
        spec = make_spec(workers=128,
                         delay={"kind": "uniform", "low": 0.5,
                                "high": 1.5})
        name, _ = select_backend([spec])
        assert name != "fleet"

    def test_replicates_prefer_vec(self):
        name, _ = select_backend([make_spec(workers=64, replicates=4)])
        assert name == "vec"


class TestSampleMany:
    @pytest.mark.parametrize("build", [
        lambda: ConstantDelay(1.3),
        lambda: UniformDelay(0.4, 1.9, seed=3),
        lambda: ExponentialDelay(1.1, seed=4),
        lambda: ParetoDelay(alpha=2.7, scale=0.8, seed=5),
        lambda: HeterogeneousDelay(
            [ConstantDelay(1.0), UniformDelay(0.2, 2.0, seed=6)]),
        lambda: WorkerClassDelay(
            [3, 5], [ConstantDelay(0.5),
                     ExponentialDelay(1.0, seed=7)]),
        lambda: TraceReplayDelay(
            {"workers": {"0": [0.5, 1.1], "1": [0.8]}}),
    ])
    def test_batched_draws_equal_sequential(self, build):
        batched, sequential = build(), build()
        workers = list(range(8))
        many = batched.sample_many(workers, now=2.0)
        one_by_one = [sequential.sample(w, 2.0) for w in workers]
        assert np.array_equal(np.asarray(many),
                              np.asarray(one_by_one))

    def test_worker_class_out_of_order_falls_back(self):
        batched = WorkerClassDelay(
            [2, 2], [ExponentialDelay(1.0, seed=8),
                     ExponentialDelay(2.0, seed=9)])
        sequential = WorkerClassDelay(
            [2, 2], [ExponentialDelay(1.0, seed=8),
                     ExponentialDelay(2.0, seed=9)])
        workers = [3, 0, 2, 1]
        many = batched.sample_many(workers, now=0.0)
        one_by_one = [sequential.sample(w, 0.0) for w in workers]
        assert np.array_equal(np.asarray(many),
                              np.asarray(one_by_one))
