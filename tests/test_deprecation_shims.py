"""Legacy entry points: warn, delegate, stay bit-identical.

The PR 5 consolidation contract for the old surfaces: ``train_async``,
``run_scenario``, and direct engine construction each emit a
``DeprecationWarning``, delegate to :mod:`repro.run`, and return
records bit-identical to the new API — so downstream code keeps
working unchanged while the warning points it at the replacement.
"""

import warnings

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, functional as F
from repro.optim import MomentumSGD
from repro.run import build_cluster, run, run_cluster
from repro.xp import ScenarioSpec


def build_workload(seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(48, 4))
    w_true = rng.normal(size=4)
    y = (x @ w_true > 0).astype(int)
    model = nn.Sequential(nn.Linear(4, 8, seed=seed), nn.ReLU(),
                          nn.Linear(8, 2, seed=seed + 1))

    def loss_fn():
        return F.cross_entropy(model(Tensor(x)), y)

    return model, loss_fn


def tiny_spec(**overrides):
    base = dict(name="shim", workload="quadratic_bowl",
                workload_params={"dim": 12, "noise_horizon": 16},
                optimizer="momentum_sgd",
                optimizer_params={"lr": 0.02, "momentum": 0.5},
                delay={"kind": "constant", "delay": 1.0},
                workers=2, reads=12, seed=6, smooth=4)
    base.update(overrides)
    return ScenarioSpec(**base)


class TestRunScenarioShim:
    def test_warns_and_matches_new_api(self):
        from repro.xp import run_scenario

        spec = tiny_spec()
        with pytest.warns(DeprecationWarning, match="repro.run"):
            legacy = run_scenario(spec)
        fresh = run(spec, backend="serial").result
        assert legacy.identity() == fresh.identity()

    def test_replicated_spec_also_delegates(self):
        from repro.xp import run_scenario

        spec = tiny_spec(replicates=3)
        with pytest.warns(DeprecationWarning):
            legacy = run_scenario(spec)
        fresh = run(spec, backend="vec").result
        assert legacy.identity() == fresh.identity()


class TestTrainAsyncShim:
    @pytest.mark.parametrize("staleness_model", ["round_robin", "random"])
    def test_warns_and_matches_run_cluster(self, staleness_model):
        from repro.cluster import ConstantDelay
        from repro.sim import train_async

        steps, workers = 24, 4
        model_a, loss_a = build_workload()
        opt_a = MomentumSGD(model_a.parameters(), lr=0.05)
        with pytest.warns(DeprecationWarning, match="run_round_robin"):
            legacy = train_async(model_a, opt_a, loss_a, steps=steps,
                                 workers=workers, seed=3,
                                 staleness_model=staleness_model)

        model_b, loss_b = build_workload()
        opt_b = MomentumSGD(model_b.parameters(), lr=0.05)
        tau = workers - 1
        topology = (dict(workers=workers)
                    if staleness_model == "round_robin"
                    else dict(workers=1, queue_staleness=tau,
                              delivery="random"))
        fresh = run_cluster(model_b, opt_b, loss_b, reads=steps,
                            updates=max(0, steps - tau),
                            delay_model=ConstantDelay(1.0), seed=3,
                            **topology)
        assert np.array_equal(legacy.series("loss"),
                              fresh.series("loss"))
        assert np.array_equal(
            np.concatenate([p.data.reshape(-1)
                            for p in model_a.parameters()]),
            np.concatenate([p.data.reshape(-1)
                            for p in model_b.parameters()]))


class TestDirectEngineConstruction:
    def test_cluster_runtime_construction_warns(self):
        from repro.cluster import ClusterRuntime

        model, loss_fn = build_workload()
        opt = MomentumSGD(model.parameters(), lr=0.05)
        with pytest.warns(DeprecationWarning,
                          match="direct ClusterRuntime construction"):
            ClusterRuntime(model, opt, loss_fn)

    def test_build_cluster_is_warning_free_and_identical(self):
        from repro.cluster import ClusterRuntime

        model_a, loss_a = build_workload()
        opt_a = MomentumSGD(model_a.parameters(), lr=0.05)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = ClusterRuntime(model_a, opt_a, loss_a, workers=3,
                                    seed=1).run(reads=20)

        model_b, loss_b = build_workload()
        opt_b = MomentumSGD(model_b.parameters(), lr=0.05)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            runtime = build_cluster(model_b, opt_b, loss_b, workers=3,
                                    seed=1)
        fresh = runtime.run(reads=20)
        assert np.array_equal(legacy.series("loss"),
                              fresh.series("loss"))

    def test_batched_engine_construction_warns(self):
        from repro.vec.engine import BatchedClusterEngine

        spec = tiny_spec(replicates=2)
        with pytest.warns(DeprecationWarning,
                          match="direct BatchedClusterEngine"):
            BatchedClusterEngine(spec, spec.replicate_seeds())

    def test_new_api_paths_are_warning_free(self):
        # the unified API must never trip its own deprecation guards
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run(tiny_spec(), backend="serial")
            run(tiny_spec(replicates=2), backend="vec")
            run([tiny_spec(), tiny_spec(name="b", seed=8)],
                backend="parallel", jobs=2)


class TestCliAlias:
    def test_xp_cli_warns_and_forwards(self, tmp_path, capsys):
        from repro.xp import save_scenarios
        from repro.xp.cli import main

        path = tmp_path / "scenarios.json"
        save_scenarios([tiny_spec()], path)
        with pytest.warns(DeprecationWarning, match="python -m repro"):
            assert main(["list", str(path)]) == 0
        assert "1 scenarios" in capsys.readouterr().out
