"""repro.obs.metrics: counters, gauges, histograms, the live seam.

The metrics registry's get-or-create instruments, the subscriber hook
that streams per-iteration payloads (the seam a future ``repro
serve`` attaches to), and the sorted plain-data snapshot.
"""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge(self):
        gauge = Gauge()
        gauge.set(3.5)
        gauge.set(-1.0)
        assert gauge.value == -1.0

    def test_histogram(self):
        hist = Histogram()
        for v in (2.0, 4.0, 6.0):
            hist.observe(v)
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["min"] == 2.0
        assert summary["max"] == 6.0
        assert summary["mean"] == pytest.approx(4.0)

    def test_empty_histogram_summary_is_all_zero(self):
        summary = Histogram().summary()
        assert summary == {"count": 0, "total": 0.0, "min": 0.0,
                           "max": 0.0, "mean": 0.0}


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        metrics = MetricsRegistry()
        assert metrics.counter("a") is metrics.counter("a")
        assert metrics.gauge("b") is metrics.gauge("b")
        assert metrics.histogram("c") is metrics.histogram("c")

    def test_snapshot_sorted_plain_data(self):
        metrics = MetricsRegistry()
        metrics.counter("z").inc(2)
        metrics.counter("a").inc()
        metrics.gauge("depth").set(4.0)
        metrics.histogram("lat").observe(1.5)
        snap = metrics.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        assert snap["counters"]["z"] == 2
        assert snap["gauges"] == {"depth": 4.0}
        assert snap["histograms"]["lat"]["count"] == 1

    def test_subscribers_receive_emitted_payloads(self):
        metrics = MetricsRegistry()
        seen = []
        metrics.subscribe(lambda step, payload: seen.append((step,
                                                             payload)))
        metrics.emit(3, {"staleness": 1.0})
        metrics.emit(4, {"staleness": 0.0})
        assert seen == [(3, {"staleness": 1.0}), (4, {"staleness": 0.0})]

    def test_unsubscribe_stops_delivery_and_is_safe_to_repeat(self):
        metrics = MetricsRegistry()
        seen = []
        cb = lambda step, payload: seen.append(step)  # noqa: E731
        metrics.subscribe(cb)
        metrics.emit(1, {})
        metrics.unsubscribe(cb)
        metrics.unsubscribe(cb)  # already gone: a no-op, not an error
        metrics.emit(2, {})
        assert seen == [1]

    def test_emit_without_subscribers_is_free(self):
        MetricsRegistry().emit(0, {"anything": 1})
