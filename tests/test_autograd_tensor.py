"""Gradient checks and graph semantics for the core Tensor type."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.autograd.grad_check import check_gradients
from repro.autograd.tensor import concatenate, stack, unbroadcast


def t(shape, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return Tensor(scale * rng.normal(size=shape), requires_grad=True)


class TestArithmetic:
    def test_add(self):
        check_gradients(lambda a, b: a + b, [t((3, 4)), t((3, 4), 1)])

    def test_add_broadcast(self):
        check_gradients(lambda a, b: a + b, [t((3, 4)), t((4,), 1)])

    def test_add_scalar(self):
        check_gradients(lambda a: a + 3.0, [t((3, 4))])

    def test_sub(self):
        check_gradients(lambda a, b: a - b, [t((2, 3)), t((2, 3), 1)])

    def test_rsub(self):
        check_gradients(lambda a: 1.0 - a, [t((2, 3))])

    def test_mul(self):
        check_gradients(lambda a, b: a * b, [t((3, 4)), t((3, 4), 1)])

    def test_mul_broadcast_rows(self):
        check_gradients(lambda a, b: a * b, [t((3, 4)), t((3, 1), 1)])

    def test_div(self):
        b = t((2, 3), 1)
        b.data += 3.0 * np.sign(b.data)  # keep away from zero
        check_gradients(lambda a, b: a / b, [t((2, 3)), b])

    def test_pow(self):
        a = t((3,))
        a.data = np.abs(a.data) + 0.5
        check_gradients(lambda a: a ** 3, [a])

    def test_neg(self):
        check_gradients(lambda a: -a, [t((3,))])

    def test_matmul_2d(self):
        check_gradients(lambda a, b: a @ b, [t((3, 4)), t((4, 5), 1)])

    def test_matmul_vec(self):
        check_gradients(lambda a, b: a @ b, [t((3, 4)), t((4,), 1)])

    def test_matmul_vec_mat(self):
        check_gradients(lambda a, b: a @ b, [t((4,)), t((4, 5), 1)])

    def test_matmul_batched(self):
        check_gradients(lambda a, b: a @ b, [t((2, 3, 4)), t((2, 4, 5), 1)])


class TestElementwise:
    @pytest.mark.parametrize("name", ["exp", "tanh", "sigmoid", "relu"])
    def test_unary(self, name):
        a = t((3, 4))
        a.data += 0.05  # keep relu away from the kink
        check_gradients(lambda a: getattr(a, name)(), [a])

    def test_log_sqrt(self):
        a = t((3, 4))
        a.data = np.abs(a.data) + 0.5
        check_gradients(lambda a: a.log(), [a])
        check_gradients(lambda a: a.sqrt(), [a])

    def test_abs(self):
        a = t((4,))
        a.data += np.sign(a.data) * 0.1
        check_gradients(lambda a: a.abs(), [a])

    def test_clip(self):
        a = t((20,))
        check_gradients(lambda a: a.clip(-0.5, 0.5), [a], atol=1e-4)


class TestReductionsAndShape:
    def test_sum_all(self):
        check_gradients(lambda a: a.sum(), [t((3, 4))])

    def test_sum_axis(self):
        check_gradients(lambda a: a.sum(axis=1), [t((3, 4))])

    def test_sum_keepdims(self):
        check_gradients(lambda a: a.sum(axis=0, keepdims=True), [t((3, 4))])

    def test_mean(self):
        check_gradients(lambda a: a.mean(), [t((3, 4))])
        check_gradients(lambda a: a.mean(axis=(0, 1)), [t((3, 4, 2))])

    def test_max(self):
        a = t((3, 4))
        check_gradients(lambda a: a.max(axis=1), [a])

    def test_reshape(self):
        check_gradients(lambda a: a.reshape(6, 2), [t((3, 4))])

    def test_transpose(self):
        check_gradients(lambda a: a.T, [t((3, 4))])
        check_gradients(lambda a: a.transpose(2, 0, 1), [t((2, 3, 4))])

    def test_getitem_slice(self):
        check_gradients(lambda a: a[1:3], [t((5, 4))])

    def test_getitem_fancy(self):
        idx = np.array([0, 2, 2])  # repeated index must accumulate
        check_gradients(lambda a: a[idx], [t((4, 3))])

    def test_concatenate(self):
        check_gradients(lambda a, b: concatenate([a, b], axis=1),
                        [t((2, 3)), t((2, 4), 1)])

    def test_stack(self):
        check_gradients(lambda a, b: stack([a, b], axis=0),
                        [t((2, 3)), t((2, 3), 1)])


class TestGraphSemantics:
    def test_grad_accumulates_on_reuse(self):
        a = Tensor([2.0], requires_grad=True)
        out = (a * a + a).sum()   # d/da = 2a + 1 = 5
        out.backward()
        np.testing.assert_allclose(a.grad, [5.0])

    def test_backward_twice_accumulates(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * 2).sum().backward()
        (a * 3).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0, 5.0])

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_no_grad_blocks_recording(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2
        assert not out.requires_grad

    def test_detach(self):
        a = Tensor([1.0], requires_grad=True)
        b = (a * 2).detach()
        assert not b.requires_grad

    def test_backward_non_scalar_requires_grad_arg(self):
        a = Tensor([[1.0, 2.0]], requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_shape_mismatch(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (a * 2).backward(np.ones((3,)))

    def test_backward_without_requires_grad(self):
        a = Tensor([1.0])
        with pytest.raises(RuntimeError):
            a.backward()

    def test_diamond_graph(self):
        # a -> b, a -> c, (b + c) must visit a exactly once with summed grads
        a = Tensor([3.0], requires_grad=True)
        b = a * 2
        c = a * 5
        (b + c).sum().backward()
        np.testing.assert_allclose(a.grad, [7.0])

    def test_deep_chain_no_recursion_error(self):
        a = Tensor([1.0], requires_grad=True)
        x = a
        for _ in range(3000):
            x = x * 1.0001
        x.sum().backward()
        assert a.grad is not None


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((3, 4))
        assert unbroadcast(g, (3, 4)) is g

    def test_leading_axis(self):
        g = np.ones((5, 3, 4))
        np.testing.assert_allclose(unbroadcast(g, (3, 4)), 5 * np.ones((3, 4)))

    def test_size_one_axis(self):
        g = np.ones((3, 4))
        np.testing.assert_allclose(unbroadcast(g, (3, 1)), 4 * np.ones((3, 1)))

    def test_combined(self):
        g = np.ones((2, 3, 4))
        np.testing.assert_allclose(unbroadcast(g, (1, 4)),
                                   6 * np.ones((1, 4)))


class TestTransposeTupleArg:
    def test_tuple_matches_varargs(self):
        a = t((2, 3, 4))
        np.testing.assert_array_equal(a.transpose((2, 0, 1)).data,
                                      a.transpose(2, 0, 1).data)

    def test_tuple_2d(self):
        a = t((3, 5))
        np.testing.assert_array_equal(a.transpose((1, 0)).data,
                                      a.data.T)

    def test_list_accepted(self):
        a = t((2, 3))
        np.testing.assert_array_equal(a.transpose([1, 0]).data, a.data.T)

    def test_tuple_gradient(self):
        check_gradients(lambda a: a.transpose((1, 0, 2)), [t((2, 3, 4))])


class TestGradCheckCoverage:
    """Numerical-gradient coverage for backward paths that had none."""

    def test_concatenate(self):
        check_gradients(lambda a, b: concatenate([a, b], axis=1),
                        [t((2, 3)), t((2, 4), 1)])

    def test_concatenate_axis0(self):
        check_gradients(lambda a, b, c: concatenate([a, b, c], axis=0),
                        [t((1, 3)), t((2, 3), 1), t((3, 3), 2)])

    def test_stack(self):
        check_gradients(lambda a, b: stack([a, b], axis=0),
                        [t((2, 3)), t((2, 3), 1)])

    def test_stack_inner_axis(self):
        check_gradients(lambda a, b: stack([a, b], axis=1),
                        [t((2, 3)), t((2, 3), 1)])

    def test_getitem_repeated_indices(self):
        # repeated rows must *accumulate* through np.add.at, not
        # overwrite: d/dx of x[[0, 0, 1]].sum() is [2, 1, 0, ...]
        a = t((4, 3))
        out = a[np.array([0, 0, 1])]
        out.sum().backward()
        expected = np.zeros((4, 3))
        expected[0] = 2.0
        expected[1] = 1.0
        np.testing.assert_array_equal(a.grad, expected)
        check_gradients(lambda x: x[np.array([0, 0, 1])], [t((4, 3))])

    def test_getitem_repeated_pairs(self):
        idx = (np.array([0, 0, 2]), np.array([1, 1, 0]))
        check_gradients(lambda x: x[idx], [t((3, 3))])

    def test_max_with_ties(self):
        # ties split the gradient evenly among the argmax positions
        a = Tensor(np.array([[1.0, 2.0, 2.0], [3.0, 3.0, 3.0]]),
                   requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(
            a.grad, [[0.0, 0.5, 0.5], [1 / 3, 1 / 3, 1 / 3]])

    def test_max_ties_numerical_smooth_region(self):
        # away from ties the max gradient passes finite differences
        a = t((3, 4))
        a.data += np.arange(12).reshape(3, 4)  # make argmax unique
        check_gradients(lambda x: x.max(axis=1), [a])

    def test_max_global_ties(self):
        a = Tensor(np.full((2, 2), 5.0), requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 0.25))


class TestThreadedNoGrad:
    def test_no_grad_is_thread_local(self):
        """Two threads racing grad/no-grad scopes must not interfere."""
        import threading

        errors = []
        barrier = threading.Barrier(2)

        def grad_worker():
            try:
                for _ in range(200):
                    barrier.wait()
                    x = Tensor([1.0], requires_grad=True)
                    y = x * 2.0
                    assert y.requires_grad, "grad thread lost recording"
                    barrier.wait()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
                barrier.abort()

        def no_grad_worker():
            try:
                for _ in range(200):
                    barrier.wait()
                    with no_grad():
                        x = Tensor([1.0], requires_grad=True)
                        y = x * 2.0
                        assert not y.requires_grad, (
                            "no_grad thread recorded anyway")
                    barrier.wait()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
                barrier.abort()

        threads = [threading.Thread(target=grad_worker),
                   threading.Thread(target=no_grad_worker)]
        for th in threads:
            th.start()
        for th in threads:
            th.join(timeout=60)
        assert not errors, errors

    def test_no_grad_restored_after_exception(self):
        from repro.autograd.tensor import is_grad_enabled

        try:
            with no_grad():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert is_grad_enabled()
