"""The unified ``repro.run.run`` entry point and its auto-selection."""

import pytest

from repro.registry import registry
from repro.run import (BackendCapabilities, ExecutionBackend, RunResult,
                       backend_names, register_backend, run,
                       select_backend)
from repro.xp import Matrix, ResultCache, ScenarioSpec, save_scenarios


def tiny_spec(**overrides):
    base = dict(name="api", workload="quadratic_bowl",
                workload_params={"dim": 12, "noise_horizon": 16},
                optimizer="momentum_sgd",
                optimizer_params={"lr": 0.02, "momentum": 0.5},
                delay={"kind": "constant", "delay": 1.0},
                workers=2, reads=12, seed=2, smooth=4)
    base.update(overrides)
    return ScenarioSpec(**base)


class TestInputForms:
    def test_single_spec(self):
        outcome = run(tiny_spec(), backend="serial")
        assert len(outcome) == 1
        assert outcome.result.name == "api"

    def test_matrix_expands_in_axis_order(self):
        matrix = Matrix(tiny_spec(), axes={
            "w": {"two": {"workers": 2}, "three": {"workers": 3}}})
        outcome = run(matrix, backend="serial")
        assert [r.name for r in outcome] == ["api/two", "api/three"]

    def test_spec_list(self):
        specs = [tiny_spec(), tiny_spec(name="api2", seed=3)]
        outcome = run(specs, backend="serial")
        assert [r.name for r in outcome] == ["api", "api2"]

    def test_scenario_file_path(self, tmp_path):
        path = tmp_path / "scenarios.json"
        save_scenarios([tiny_spec()], path)
        outcome = run(str(path), backend="serial")
        assert outcome.result.name == "api"

    def test_rejects_non_spec_items(self):
        with pytest.raises(TypeError, match="ScenarioSpec"):
            run([tiny_spec(), "nope"], backend="serial")

    def test_result_property_raises_on_multi(self):
        outcome = run([tiny_spec(), tiny_spec(name="b", seed=4)],
                      backend="serial")
        with pytest.raises(ValueError, match="2 records"):
            outcome.result


class TestAutoSelection:
    def test_replicated_lockstep_selects_vec(self):
        name, reason = select_backend([tiny_spec(replicates=4)])
        assert name == "vec"
        assert "replicate" in reason

    def test_matrix_with_workers_selects_parallel(self):
        specs = [tiny_spec(), tiny_spec(name="b", seed=9)]
        name, _ = select_backend(specs, jobs=4)
        assert name == "parallel"

    def test_single_stochastic_spec_selects_cluster(self):
        spec = tiny_spec(delay={"kind": "pareto", "seed": 4})
        assert select_backend([spec])[0] == "cluster"

    def test_faulty_spec_selects_cluster(self):
        spec = tiny_spec(faults={"crash_prob": 0.01, "seed": 1})
        assert select_backend([spec])[0] == "cluster"

    def test_plain_single_spec_selects_serial(self):
        assert select_backend([tiny_spec()])[0] == "serial"

    def test_single_job_budget_disables_parallel(self):
        specs = [tiny_spec(), tiny_spec(name="b", seed=9)]
        assert select_backend(specs, jobs=1)[0] == "serial"

    def test_replicated_non_lockstep_does_not_select_vec(self):
        spec = tiny_spec(replicates=3,
                         delay={"kind": "pareto", "seed": 4})
        assert select_backend([spec])[0] == "cluster"

    def test_run_records_the_selection_reason(self):
        outcome = run(tiny_spec(replicates=2))
        assert outcome.backend == "vec"
        assert "replicate" in outcome.reason


class TestCaching:
    def test_cache_round_trip_zero_recompute(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = [tiny_spec(), tiny_spec(name="b", seed=5)]
        cold = run(specs, backend="serial", cache=cache)
        assert (cold.hits, cold.misses) == (0, 2)
        warm = run(specs, backend="serial", cache=cache)
        assert (warm.hits, warm.misses) == (2, 0)
        assert warm.identities() == cold.identities()
        assert all(r.cached for r in warm)

    def test_cache_shared_across_backends(self, tmp_path):
        # records are backend-independent, so a cache written by one
        # backend must satisfy any other
        cache = ResultCache(tmp_path / "cache")
        run(tiny_spec(), backend="vec", cache=cache)
        warm = run(tiny_spec(), backend="serial", cache=cache)
        assert (warm.hits, warm.misses) == (1, 0)

    def test_duplicate_specs_share_one_record(self):
        spec = tiny_spec()
        outcome = run([spec, spec, spec], backend="serial")
        assert outcome.misses == 1
        assert outcome.results[0] is outcome.results[1]


class TestValidation:
    def test_unknown_optimizer_fails_preflight(self):
        spec = tiny_spec(optimizer="warp_drive")
        with pytest.raises(ValueError, match="unknown optimizer"):
            run(spec, backend="serial")

    def test_optimizer_param_typo_fails_preflight(self):
        spec = tiny_spec(optimizer_params={"lr": 0.02, "momentun": 0.5})
        with pytest.raises(ValueError, match="unknown config keys"):
            run(spec, backend="serial")

    def test_unknown_delay_kind_fails_preflight(self):
        spec = tiny_spec(delay={"kind": "wormhole"})
        with pytest.raises(ValueError, match="unknown delay kind"):
            run(spec, backend="serial")

    def test_unknown_shard_policy_fails_preflight(self):
        spec = tiny_spec(shard_policy="везде")
        with pytest.raises(ValueError, match="unknown shard policy"):
            run(spec, backend="serial")

    def test_module_reference_workloads_pass_preflight(self):
        spec = tiny_spec(workload="benchmarks.workloads:nonexistent")
        # name validation defers module:attr resolution to execution
        spec.validate_components()

    def test_validate_false_skips_preflight(self):
        spec = tiny_spec(optimizer="late_registered",
                         optimizer_params={"lr": 0.02})
        with pytest.raises(ValueError, match="unknown optimizer"):
            run(spec, backend="serial")

        def late(params, lr: float = 0.1):
            """Late-registered optimizer for the validate=False test."""
            from repro.optim import SGD

            return SGD(params, lr=lr)

        from repro.xp.factories import register_optimizer

        register_optimizer("late_registered", late)
        try:
            # preflight off: components resolved at execution time
            outcome = run(spec, backend="serial", validate=False)
            assert outcome.result.name == "api"
        finally:
            registry.unregister("optimizer", "late_registered")

    def test_cached_specs_skip_validation(self, tmp_path):
        # validation only pre-flights what will actually execute;
        # a cached record satisfies even a spec whose component was
        # since unregistered
        cache = ResultCache(tmp_path / "cache")
        run(tiny_spec(), backend="serial", cache=cache)
        outcome = run(tiny_spec(), backend="serial", cache=cache)
        assert outcome.hits == 1


class TestBackendRegistration:
    def test_custom_backend_selectable_by_name(self):
        class EchoBackend(ExecutionBackend):
            """Test backend: serial semantics under a custom name."""

            name = "echo"

            def capabilities(self):
                """No special capabilities."""
                return BackendCapabilities()

            def execute(self, specs, options):
                """Delegate to the scalar reference executor."""
                from repro.run import execute_spec

                return [execute_spec(s) for s in specs]

        register_backend("echo", EchoBackend)
        try:
            assert "echo" in backend_names()
            outcome = run(tiny_spec(), backend="echo")
            assert outcome.backend == "echo"
            assert outcome.result.identity() == \
                run(tiny_spec(), backend="serial").result.identity()
        finally:
            registry.unregister("backend", "echo")

    def test_unknown_backend_fails_with_choices(self):
        with pytest.raises(ValueError, match="choose from"):
            run(tiny_spec(), backend="quantum")

    def test_backend_returning_wrong_count_is_an_error(self):
        class BrokenBackend(ExecutionBackend):
            """Test backend that drops records."""

            name = "broken"

            def capabilities(self):
                """No special capabilities."""
                return BackendCapabilities()

            def execute(self, specs, options):
                """Return too few records."""
                return []

        register_backend("broken", BrokenBackend)
        try:
            with pytest.raises(RuntimeError, match="0 records"):
                run(tiny_spec(), backend="broken")
        finally:
            registry.unregister("backend", "broken")


class TestRunResult:
    def test_as_dict_keeps_legacy_keys(self):
        outcome = run(tiny_spec(), backend="serial")
        payload = outcome.as_dict()
        assert set(payload) >= {"results", "hits", "misses", "backend"}
        assert payload["results"][0]["name"] == "api"

    def test_metrics_by_name(self):
        outcome = run([tiny_spec(), tiny_spec(name="b", seed=5)],
                      backend="serial")
        table = outcome.metrics_by_name()
        assert set(table) == {"api", "b"}
        assert "final_loss" in table["api"]

    def test_empty_batch(self):
        outcome = run([], backend="serial")
        assert isinstance(outcome, RunResult)
        assert outcome.results == []
