"""Fault injection: crashes lose gradients, stragglers add staleness,
pauses defer commits — all reproducibly from a seed."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, functional as F
from repro.cluster import (ClusterRuntime, ConstantDelay, FaultInjector,
                           ShardPause, Straggler, WorkerCrash)
from repro.optim import SGD
from repro.sim import staleness_summary


def make_problem(seed=3):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(32, 3))
    y = (x[:, 0] > 0).astype(int)
    model = nn.Sequential(nn.Linear(3, 8, seed=0), nn.ReLU(),
                          nn.Linear(8, 2, seed=1))

    def loss_fn():
        return F.cross_entropy(model(Tensor(x)), y)

    return model, loss_fn


def run_with_faults(faults, workers=4, reads=60, delay=None):
    model, loss_fn = make_problem()
    opt = SGD(model.parameters(), lr=0.05)
    runtime = ClusterRuntime(model, opt, loss_fn, workers=workers,
                             delay_model=delay or ConstantDelay(1.0),
                             faults=faults)
    runtime.run(reads=reads)
    return runtime


class TestScheduledFaults:
    def test_crash_loses_gradient_and_restarts(self):
        faults = FaultInjector(scheduled=[
            WorkerCrash(worker=1, time=3.0, downtime=4.0)])
        runtime = run_with_faults(faults)
        stats = runtime.worker_stats()
        assert stats[1]["crashes"] == 1
        assert stats[1]["restarts"] == 1
        assert stats[1]["alive"]
        # the crashed computation never commits: worker 1 commits fewer
        # updates than its peers
        assert stats[1]["applied"] < stats[0]["applied"]
        assert "crash" in runtime.log and "restart" in runtime.log

    def test_crash_without_restart_budget_leaves_worker_down(self):
        faults = FaultInjector(scheduled=[
            WorkerCrash(worker=0, time=1.0, downtime=1e9)])
        runtime = run_with_faults(faults, reads=20)
        stats = runtime.worker_stats()
        assert stats[0]["crashes"] == 1
        assert not stats[0]["alive"]
        assert runtime.reads_done == 20  # survivors absorb the budget

    def test_straggler_window_slows_worker(self):
        faults = FaultInjector(scheduled=[
            Straggler(worker=2, start=0.0, duration=1e9, factor=20.0)])
        runtime = run_with_faults(faults, reads=80)
        stats = runtime.worker_stats()
        others = [stats[i]["applied"] for i in (0, 1, 3)]
        assert stats[2]["applied"] < min(others)
        # straggler gradients arrive very stale
        assert staleness_summary(runtime.log)["max"] > 3

    def test_shard_pause_defers_commits(self):
        faults = FaultInjector(scheduled=[
            ShardPause(start=2.5, duration=10.0, shard=0)])
        runtime = run_with_faults(faults, reads=40)
        deferred = [e for e in runtime.timeline if e["kind"] == "deferred"]
        assert deferred, "arrivals inside the pause must be deferred"
        assert all(e["until"] == pytest.approx(12.5) for e in deferred)
        # commits resume after the pause and the run still completes
        assert runtime.reads_done == 40
        assert runtime.updates_done > 0

    def test_drain_preserves_pending_restart(self):
        """drain_final must not drop lifecycle events: a worker whose
        restart is still pending revives when the run is resumed."""
        model, loss_fn = make_problem()
        opt = SGD(model.parameters(), lr=0.05)
        faults = FaultInjector(scheduled=[
            WorkerCrash(worker=1, time=3.0, downtime=20.0)])
        runtime = ClusterRuntime(model, opt, loss_fn, workers=4,
                                 faults=faults)
        runtime.run(reads=14, drain_final=True)
        assert not runtime.workers[1].alive
        assert len(runtime.events) == 1  # the pending restart survives
        # resume far enough for the simulated clock to pass the restart
        runtime.run(reads=150)
        assert runtime.workers[1].alive
        assert runtime.workers[1].restarts == 1
        assert runtime.reads_done == 150

    def test_pause_deferral_preserves_delivery_order(self):
        """A deferred arrival keeps its place: it commits before an
        arrival natively timed at the pause end."""
        from repro.cluster import HeterogeneousDelay, ConstantDelay

        model, loss_fn = make_problem()
        opt = SGD(model.parameters(), lr=0.05)
        faults = FaultInjector(scheduled=[ShardPause(start=0.5,
                                                     duration=1.5)])
        runtime = ClusterRuntime(
            model, opt, loss_fn, workers=2,
            delay_model=HeterogeneousDelay([ConstantDelay(1.0),
                                            ConstantDelay(2.0)]),
            faults=faults)
        runtime.run(reads=10)
        workers = runtime.log.series("worker")
        # worker 0's gradient (real arrival t=1.0, deferred to t=2.0)
        # commits before worker 1's native t=2.0 arrival
        assert workers[0] == 0.0 and workers[1] == 1.0

    def test_injector_validation(self):
        with pytest.raises(ValueError):
            FaultInjector(crash_prob=1.5)
        with pytest.raises(ValueError):
            FaultInjector(straggler_factor=0.5)
        with pytest.raises(ValueError):
            FaultInjector(crash_downtime=-1.0)
        with pytest.raises(ValueError):
            FaultInjector(scheduled=[WorkerCrash(worker=-1, time=1.0)])
        with pytest.raises(ValueError):
            FaultInjector(scheduled=[
                Straggler(worker=0, start=0.0, duration=1.0, factor=0.5)])
        with pytest.raises(ValueError):
            FaultInjector(scheduled=[ShardPause(start=0.0, duration=-1.0)])

    def test_scheduled_worker_id_checked_against_runtime(self):
        """A fault addressing a nonexistent worker fails loudly at
        construction instead of silently never firing."""
        model, loss_fn = make_problem()
        opt = SGD(model.parameters(), lr=0.05)
        faults = FaultInjector(scheduled=[WorkerCrash(worker=7,
                                                      time=10.0)])
        with pytest.raises(ValueError):
            ClusterRuntime(model, opt, loss_fn, workers=4, faults=faults)


class TestRandomFaults:
    def test_seeded_faults_are_reproducible(self):
        def run(seed):
            faults = FaultInjector(crash_prob=0.05, straggler_prob=0.1,
                                   straggler_factor=5.0, seed=seed)
            runtime = run_with_faults(faults, reads=80)
            crashes = sum(w["crashes"] for w in runtime.worker_stats())
            return runtime.log.scalars["loss"], crashes

        loss_a, crashes_a = run(7)
        loss_b, crashes_b = run(7)
        loss_c, crashes_c = run(8)
        assert loss_a == loss_b and crashes_a == crashes_b
        assert loss_a != loss_c or crashes_a != crashes_c

    def test_scheduled_faults_do_not_shift_random_stream(self):
        """For one fixed dispatch sequence, adding a scheduled fault
        must not change the random decisions: the draws are consumed
        even when a scheduled fault takes precedence."""
        def decisions(scheduled):
            injector = FaultInjector(crash_prob=0.3, straggler_prob=0.3,
                                     straggler_factor=2.0,
                                     scheduled=scheduled, seed=5)
            out = []
            for i in range(40):
                delay, crash = injector.on_dispatch(
                    worker=i % 4, now=float(i), delay=1.0)
                out.append((i % 4, delay, crash is not None))
            return out

        plain = decisions([])
        windowed = decisions(
            [Straggler(worker=0, start=0.0, duration=8.0, factor=7.0)])
        # identical crash decisions everywhere...
        assert [d[2] for d in plain] == [d[2] for d in windowed]
        # ...and identical delays except worker 0 inside the window
        for p, w in zip(plain, windowed):
            if p[0] == 0 and w[1] == 7.0:
                continue  # the scheduled window itself
            assert p[1] == w[1]

    def test_random_crashes_actually_fire(self):
        faults = FaultInjector(crash_prob=0.2, crash_downtime=1.0, seed=0)
        runtime = run_with_faults(faults, reads=100)
        assert sum(w["crashes"] for w in runtime.worker_stats()) > 0
        assert sum(w["restarts"] for w in runtime.worker_stats()) > 0

    def test_random_pauses_defer_arrivals(self):
        faults = FaultInjector(pause_prob=0.3, pause_duration=3.0, seed=1)
        runtime = run_with_faults(faults, reads=60)
        assert any(e["kind"] == "deferred" for e in runtime.timeline)
        assert runtime.reads_done == 60

    def test_inactive_injector_is_noop(self):
        assert not FaultInjector().active
        assert FaultInjector(crash_prob=0.1).active
        assert FaultInjector(scheduled=[ShardPause(0.0, 1.0)]).active

        plain = run_with_faults(None)
        injected = run_with_faults(FaultInjector(seed=123))
        assert plain.log.scalars["loss"] == injected.log.scalars["loss"]


class TestCheckpointHandoff:
    """The transient dispatch→consume hand-off fields survive a
    checkpoint taken between the two calls.

    The runtime calls ``on_dispatch`` and only later (when the crash
    event fires) ``consume_crash``; a ``state_dict`` round-trip in that
    window used to reset ``_pending_downtime`` to the constructor
    default, silently rewriting a scheduled crash's custom downtime."""

    def test_scheduled_downtime_survives_roundtrip(self):
        injector = FaultInjector(scheduled=[
            WorkerCrash(worker=0, time=1.0, downtime=42.0)])
        delay, crash = injector.on_dispatch(worker=0, now=0.5, delay=1.0)
        assert crash is not None
        restored = FaultInjector(scheduled=[
            WorkerCrash(worker=0, time=1.0, downtime=42.0)])
        restored.load_state_dict(injector.state_dict())
        assert restored.consume_crash() == 42.0
        # and the consumed-crash set travelled too: the scheduled
        # entry must not fire a second time after restore
        _, again = restored.on_dispatch(worker=0, now=2.0, delay=1.0)
        assert again is None

    def test_pause_shard_survives_roundtrip(self):
        injector = FaultInjector(scheduled=[
            ShardPause(start=0.0, duration=4.0, shard=3)])
        assert injector.pause_until(1.0) == 4.0
        restored = FaultInjector(scheduled=[
            ShardPause(start=0.0, duration=4.0, shard=3)])
        restored.load_state_dict(injector.state_dict())
        assert restored.consume_pause_shard() == 3

    def test_missing_keys_fall_back_to_defaults(self):
        # state dicts written before the hand-off fields existed
        injector = FaultInjector(crash_downtime=7.0, seed=2)
        state = injector.state_dict()
        del state["pending_downtime"]
        del state["pending_pause_shard"]
        injector.load_state_dict(state)
        assert injector.consume_crash() == 7.0
        assert injector.consume_pause_shard() == 0
