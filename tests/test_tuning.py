"""Grid search and the multi-seed experiment harness."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F
from repro import nn
from repro.optim import SGD
from repro.tuning import Workload, average_curves, grid_search, run_workload


def build_problem(seed):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(24, 3))
    y = (x[:, 1] > 0).astype(int)
    model = nn.Sequential(nn.Linear(3, 6, seed=seed), nn.ReLU(),
                          nn.Linear(6, 2, seed=seed + 1))

    def loss_fn():
        return F.cross_entropy(model(Tensor(x)), y)

    return model, loss_fn


WORKLOAD = Workload(name="toy", build=build_problem, steps=25,
                    smooth_window=5)


class TestRunWorkload:
    def test_averages_over_seeds(self):
        result = run_workload(WORKLOAD, lambda p: SGD(p, lr=0.2), "sgd",
                              seeds=(0, 1, 2))
        assert result.losses.shape == (25,)
        assert result.losses[-1] < result.losses[0]
        assert len(result.logs) == 3

    def test_async_route(self):
        result = run_workload(WORKLOAD, lambda p: SGD(p, lr=0.1), "sgd",
                              seeds=(0,), async_workers=4)
        assert result.losses.size == 25

    def test_divergence_flag(self):
        result = run_workload(WORKLOAD, lambda p: SGD(p, lr=1e9), "sgd",
                              seeds=(0,))
        assert result.diverged


class TestAverageCurves:
    def test_truncates_to_shortest(self):
        out = average_curves([np.ones(5), np.zeros(3)])
        np.testing.assert_allclose(out, [0.5, 0.5, 0.5])

    def test_empty(self):
        assert average_curves([]).size == 0


class TestGridSearch:
    def test_picks_reasonable_lr(self):
        """Grid search must prefer a working lr over degenerate ones."""
        result = grid_search(
            WORKLOAD, lambda params, lr: SGD(params, lr),
            lr_grid=[1e-7, 0.3, 1e9], optimizer_name="sgd", seeds=(0, 1))
        assert result.best_lr == pytest.approx(0.3)
        assert not result.best_run.diverged
        assert set(result.all_runs) == {1e-7, 0.3, 1e9}

    def test_diverged_config_never_wins(self):
        result = grid_search(
            WORKLOAD, lambda params, lr: SGD(params, lr),
            lr_grid=[0.05, 1e9], optimizer_name="sgd", seeds=(0,))
        assert result.best_lr == pytest.approx(0.05)

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            grid_search(WORKLOAD, lambda p, lr: SGD(p, lr), [], "sgd")
