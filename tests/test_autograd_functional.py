"""Gradient checks for the neural-net functional ops."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd import functional as F
from repro.autograd.grad_check import check_gradients


def t(shape, seed=0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestSoftmaxFamily:
    def test_log_softmax_grad(self):
        check_gradients(lambda a: F.log_softmax(a), [t((4, 5))])

    def test_log_softmax_rows_normalize(self):
        out = F.log_softmax(t((3, 6)))
        np.testing.assert_allclose(np.exp(out.data).sum(axis=1), 1.0)

    def test_log_softmax_stability(self):
        x = Tensor(np.array([[1000.0, 1000.0]]), requires_grad=True)
        out = F.log_softmax(x)
        assert np.isfinite(out.data).all()

    def test_softmax_grad(self):
        check_gradients(lambda a: F.softmax(a), [t((3, 4))], atol=1e-4)

    def test_cross_entropy_matches_manual(self):
        logits = t((5, 3))
        targets = np.array([0, 2, 1, 1, 0])
        ce = F.cross_entropy(logits, targets)
        logp = F.log_softmax(logits).data
        manual = -logp[np.arange(5), targets].mean()
        np.testing.assert_allclose(float(ce.data), manual)

    def test_cross_entropy_grad(self):
        targets = np.array([0, 2, 1, 1])
        check_gradients(lambda a: F.cross_entropy(a, targets), [t((4, 3))])

    def test_cross_entropy_reductions(self):
        logits = t((4, 3))
        targets = np.array([0, 1, 2, 0])
        mean = F.cross_entropy(logits, targets, reduction="mean")
        total = F.cross_entropy(logits, targets, reduction="sum")
        none = F.cross_entropy(logits, targets, reduction="none")
        np.testing.assert_allclose(float(total.data), 4 * float(mean.data))
        assert none.shape == (4,)
        with pytest.raises(ValueError):
            F.cross_entropy(logits, targets, reduction="bogus")

    def test_cross_entropy_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            F.cross_entropy(t((2, 3, 4)), np.zeros(2, dtype=int))

    def test_mse_loss(self):
        check_gradients(lambda a: F.mse_loss(a, np.zeros((3, 2))), [t((3, 2))])


class TestConvPool:
    def test_conv2d_grad(self):
        x = t((2, 3, 5, 5))
        w = t((4, 3, 3, 3), 1)
        b = t((4,), 2)
        check_gradients(lambda x, w, b: F.conv2d(x, w, b, padding=1),
                        [x, w, b], atol=1e-4)

    def test_conv2d_stride_grad(self):
        x = t((1, 2, 6, 6))
        w = t((3, 2, 3, 3), 1)
        check_gradients(lambda x, w: F.conv2d(x, w, stride=2, padding=1),
                        [x, w], atol=1e-4)

    def test_conv2d_output_shape(self):
        x = t((2, 3, 8, 8))
        w = t((5, 3, 3, 3), 1)
        assert F.conv2d(x, w, padding=1).shape == (2, 5, 8, 8)
        assert F.conv2d(x, w, stride=2, padding=1).shape == (2, 5, 4, 4)

    def test_conv2d_matches_naive(self):
        # cross-check im2col against a direct quadruple loop
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 2, 4, 4))
        w = rng.normal(size=(3, 2, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), padding=1).data
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        naive = np.zeros((1, 3, 4, 4))
        for o in range(3):
            for i in range(4):
                for j in range(4):
                    naive[0, o, i, j] = np.sum(
                        xp[0, :, i:i + 3, j:j + 3] * w[o])
        np.testing.assert_allclose(out, naive, atol=1e-12)

    def test_conv2d_channel_mismatch(self):
        with pytest.raises(ValueError):
            F.conv2d(t((1, 3, 4, 4)), t((2, 4, 3, 3), 1))

    def test_avg_pool_grad(self):
        check_gradients(lambda x: F.avg_pool2d(x, 2), [t((2, 3, 4, 4))])

    def test_max_pool_grad(self):
        check_gradients(lambda x: F.max_pool2d(x, 2), [t((2, 2, 4, 4))],
                        atol=1e-4)

    def test_global_avg_pool(self):
        x = t((2, 3, 4, 4))
        out = F.global_avg_pool2d(x)
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out.data, x.data.mean(axis=(2, 3)))

    def test_pool_rejects_indivisible(self):
        with pytest.raises(ValueError):
            F.avg_pool2d(t((1, 1, 5, 5)), 2)


class TestEmbeddingDropoutLinear:
    def test_embedding_grad_accumulates_repeats(self):
        w = t((5, 3))
        idx = np.array([1, 1, 4])
        out = F.embedding(w, idx)
        out.sum().backward()
        expected = np.zeros((5, 3))
        expected[1] = 2.0
        expected[4] = 1.0
        np.testing.assert_allclose(w.grad, expected)

    def test_embedding_2d_indices(self):
        w = t((6, 4))
        idx = np.array([[0, 1], [2, 3]])
        assert F.embedding(w, idx).shape == (2, 2, 4)

    def test_dropout_eval_identity(self):
        x = t((5, 5))
        rng = np.random.default_rng(0)
        out = F.dropout(x, 0.5, rng, training=False)
        assert out is x

    def test_dropout_preserves_scale(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)), requires_grad=True)
        out = F.dropout(x, 0.25, rng, training=True)
        assert abs(out.data.mean() - 1.0) < 0.02

    def test_linear(self):
        check_gradients(lambda x, w, b: F.linear(x, w, b),
                        [t((4, 3)), t((5, 3), 1), t((5,), 2)])
