"""Differential suite: lazy realization is bit-identical to eager.

The :mod:`repro.lazy` contract is exact float64 equality, not
approximate closeness — every lazy kernel evaluates the eager op's
verbatim NumPy expression and ``backward()`` replays the eager
accumulation algorithm over graph nodes.  These tests therefore use
``np.array_equal`` (bitwise modulo NaN) everywhere:

- one test per op family in ``tensor.py`` / ``functional.py``
  (forward value and every input gradient);
- a randomized-graph generator that composes ops into DAGs with
  shared subexpressions, and compares eager vs lazy end to end;
- whole-model training steps (MLP, LSTM LM, seq2seq, conv) —
  loss bits and every parameter-gradient bit;
- the fallback seams: unsupported ops continue eagerly with
  gradients bridged across the boundary in both directions.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.autograd import functional as F
from repro.autograd.tensor import concatenate, stack
from repro.lazy import LazyRuntime, LazyTensor, lazy_mode


def arr(shape, seed=0, scale=1.0, offset=0.0):
    rng = np.random.default_rng(seed)
    return scale * rng.normal(size=shape) + offset


def both(fn, arrays, grad_arrays=None):
    """Run ``fn`` over eager and lazy tensors; return both results.

    ``fn`` receives freshly constructed Tensors (requires_grad=True),
    its output is reduced with ``.sum()`` and backpropagated, and the
    (loss value, [input grads]) pairs are returned for comparison.

    The lazy pass constructs its tensors *inside* the ``lazy_mode``
    block, so the whole graph records natively (methods on tensors
    created outside the block intentionally stay eager — that bridge
    has its own tests in :class:`TestEagerLeafBridge`).
    """
    outs = []
    for mode_lazy in (False, True):
        if mode_lazy:
            with lazy_mode():
                tensors = [Tensor(a.copy(), requires_grad=True)
                           for a in arrays]
                out = fn(*tensors)
                loss = out.sum()
                loss.backward()
                value = np.asarray(loss.data).copy()
        else:
            tensors = [Tensor(a.copy(), requires_grad=True)
                       for a in arrays]
            out = fn(*tensors)
            loss = out.sum()
            loss.backward()
            value = np.asarray(loss.data).copy()
        grads = [None if t.grad is None else np.asarray(t.grad).copy()
                 for t in tensors]
        outs.append((value, grads))
    return outs


def assert_identical(fn, *arrays):
    (ev, eg), (lv, lg) = both(fn, arrays)
    assert np.array_equal(ev, lv), f"forward diverged: {ev} vs {lv}"
    for i, (a, b) in enumerate(zip(eg, lg)):
        if a is None or b is None:
            assert a is None and b is None, f"grad {i} presence diverged"
            continue
        assert np.array_equal(a, b), (
            f"grad {i} diverged, max abs diff "
            f"{np.max(np.abs(a - b))}")


class TestOpIdentity:
    def test_add(self):
        assert_identical(lambda a, b: a + b, arr((3, 4)), arr((3, 4), 1))

    def test_add_broadcast(self):
        assert_identical(lambda a, b: a + b, arr((3, 4)), arr((4,), 1))

    def test_add_scalar(self):
        assert_identical(lambda a: a + 3.5, arr((3, 4)))

    def test_radd(self):
        assert_identical(lambda a: 2.0 + a, arr((3, 4)))

    def test_sub(self):
        assert_identical(lambda a, b: a - b, arr((2, 5)), arr((2, 5), 1))

    def test_rsub(self):
        assert_identical(lambda a: 1.0 - a, arr((2, 3)))

    def test_mul(self):
        assert_identical(lambda a, b: a * b, arr((3, 4)), arr((3, 4), 1))

    def test_mul_broadcast(self):
        assert_identical(lambda a, b: a * b, arr((3, 4)), arr((3, 1), 1))

    def test_div(self):
        b = arr((2, 3), 1)
        b += 3.0 * np.sign(b)
        assert_identical(lambda a, c: a / c, arr((2, 3)), b)

    def test_rdiv(self):
        b = arr((2, 3), 1)
        b += 3.0 * np.sign(b)
        assert_identical(lambda c: 2.0 / c, b)

    def test_pow(self):
        assert_identical(lambda a: a ** 3.0, arr((3, 3)))

    def test_neg(self):
        assert_identical(lambda a: -a, arr((4,)))

    def test_matmul_2d(self):
        assert_identical(lambda a, b: a @ b, arr((3, 4)), arr((4, 5), 1))

    def test_matmul_vec(self):
        assert_identical(lambda a, b: a @ b, arr((3, 4)), arr((4,), 1))

    def test_matmul_vec_mat(self):
        assert_identical(lambda a, b: a @ b, arr((4,)), arr((4, 5), 1))

    def test_matmul_batched(self):
        assert_identical(lambda a, b: a @ b,
                         arr((2, 3, 4)), arr((2, 4, 5), 1))

    def test_rmatmul_ndarray(self):
        w = arr((3, 4), 1)
        assert_identical(lambda a: w @ a, arr((4, 2)))

    @pytest.mark.parametrize("name", ["exp", "tanh", "sigmoid", "relu",
                                      "abs"])
    def test_unary(self, name):
        assert_identical(lambda a: getattr(a, name)(), arr((3, 4)))

    def test_log_sqrt(self):
        a = np.abs(arr((3, 4))) + 0.5
        assert_identical(lambda x: x.log(), a)
        assert_identical(lambda x: x.sqrt(), a)

    def test_clip(self):
        assert_identical(lambda a: a.clip(-0.5, 0.8), arr((4, 4)))

    def test_sum_all(self):
        assert_identical(lambda a: a.sum(), arr((3, 4)))

    def test_sum_axis_keepdims(self):
        assert_identical(lambda a: a.sum(axis=1, keepdims=True),
                         arr((3, 4)))

    def test_sum_axis_tuple(self):
        assert_identical(lambda a: a.sum(axis=(0, 2)), arr((2, 3, 4)))

    def test_mean(self):
        assert_identical(lambda a: a.mean(axis=0), arr((3, 4)))

    def test_max_axis(self):
        assert_identical(lambda a: a.max(axis=1), arr((3, 4)))

    def test_max_with_ties(self):
        a = np.array([[1.0, 2.0, 2.0], [3.0, 3.0, 3.0]])
        assert_identical(lambda x: x.max(axis=1), a)

    def test_reshape(self):
        assert_identical(lambda a: a.reshape(4, 3), arr((3, 4)))
        assert_identical(lambda a: a.reshape((2, 6)), arr((3, 4)))
        assert_identical(lambda a: a.reshape(-1), arr((3, 4)))

    def test_transpose(self):
        assert_identical(lambda a: a.T, arr((3, 4)))
        assert_identical(lambda a: a.transpose(2, 0, 1), arr((2, 3, 4)))
        assert_identical(lambda a: a.transpose((1, 0)), arr((3, 4)))

    def test_getitem_basic(self):
        assert_identical(lambda a: a[1:3], arr((5, 4)))
        assert_identical(lambda a: a[:, 0:2], arr((5, 4)))
        assert_identical(lambda a: a[2], arr((5, 4)))

    def test_getitem_fancy(self):
        idx = np.array([0, 2, 2, 1])
        assert_identical(lambda a: a[idx], arr((4, 3)))

    def test_getitem_pair_index(self):
        idx = (np.arange(3), np.array([2, 0, 2]))
        assert_identical(lambda a: a[idx], arr((3, 4)))

    def test_concatenate(self):
        assert_identical(lambda a, b: concatenate([a, b], axis=1),
                         arr((2, 3)), arr((2, 4), 1))

    def test_stack(self):
        assert_identical(lambda a, b: stack([a, b], axis=1),
                         arr((2, 3)), arr((2, 3), 1))

    def test_log_softmax(self):
        assert_identical(lambda a: F.log_softmax(a, axis=-1), arr((4, 7)))

    def test_softmax(self):
        assert_identical(lambda a: F.softmax(a, axis=0), arr((4, 7)))

    def test_cross_entropy(self):
        targets = np.array([0, 2, 1, 2])
        assert_identical(lambda a: F.cross_entropy(a, targets),
                         arr((4, 3)))

    def test_mse_loss(self):
        target = arr((3, 2), 9)
        assert_identical(lambda a: F.mse_loss(a, target), arr((3, 2)))

    def test_leaky_relu(self):
        assert_identical(lambda a: F.leaky_relu(a, 0.1), arr((3, 4)))

    def test_softplus(self):
        assert_identical(F.softplus, arr((3, 4)))

    def test_gelu(self):
        assert_identical(F.gelu, arr((3, 4)))

    def test_pad2d(self):
        assert_identical(lambda a: F.pad2d(a, 2), arr((2, 3, 4, 4)))

    def test_linear(self):
        assert_identical(lambda x, w, b: F.linear(x, w, b),
                         arr((5, 4)), arr((3, 4), 1), arr((3,), 2))

    def test_linear_no_bias(self):
        assert_identical(lambda x, w: F.linear(x, w),
                         arr((5, 4)), arr((3, 4), 1))

    def test_conv2d(self):
        assert_identical(
            lambda x, w, b: F.conv2d(x, w, b, stride=1, padding=1),
            arr((2, 3, 5, 5)), arr((4, 3, 3, 3), 1), arr((4,), 2))

    def test_conv2d_stride_no_bias(self):
        assert_identical(
            lambda x, w: F.conv2d(x, w, stride=2),
            arr((2, 2, 6, 6)), arr((3, 2, 2, 2), 1))

    def test_avg_pool2d(self):
        assert_identical(lambda a: F.avg_pool2d(a, 2), arr((2, 3, 4, 4)))

    def test_max_pool2d(self):
        assert_identical(lambda a: F.max_pool2d(a, 2), arr((2, 3, 4, 4)))

    def test_max_pool2d_ties(self):
        a = np.zeros((1, 1, 4, 4))
        assert_identical(lambda x: F.max_pool2d(x, 2), a)

    def test_embedding(self):
        idx = np.array([[0, 3, 3], [1, 0, 2]])
        assert_identical(lambda w: F.embedding(w, idx), arr((5, 4)))

    def test_split(self):
        assert_identical(
            lambda a: F.split(a, 2, axis=1)[0] * F.split(a, 2, axis=1)[1],
            arr((3, 6)))

    def test_dropout_same_rng(self):
        (ev, eg), (lv, lg) = both(
            lambda a: F.dropout(a, 0.5, np.random.default_rng(7)),
            [arr((4, 4))])
        assert np.array_equal(ev, lv)
        assert np.array_equal(eg[0], lg[0])


class TestGraphPatterns:
    def test_diamond_reuse(self):
        def fn(a):
            b = a * 2.0
            return b * b + b
        assert_identical(fn, arr((3, 3)))

    def test_leaf_consumed_twice(self):
        assert_identical(lambda a: a * a + a.tanh(), arr((3, 3)))

    def test_weight_shared_between_linear_and_direct(self):
        # the risky mixed-consumption pattern: one parameter feeding
        # both the memoized linear fast path and a direct reduction
        def fn(x, w):
            return F.linear(x, w).sum() + (w * w).sum() + w.sum()
        assert_identical(fn, arr((5, 4)), arr((3, 4), 1))

    def test_linear_repeated_like_rnn(self):
        def fn(x, w, b):
            h = x
            for _ in range(4):
                h = F.linear(h, w, b).tanh()
            return h
        assert_identical(fn, arr((3, 4)), arr((4, 4), 1), arr((4,), 2))

    def test_chain_depth(self):
        def fn(a):
            x = a
            for i in range(50):
                x = x * 1.01 + 0.001
            return x
        assert_identical(fn, arr((4, 4)))

    def test_scalar_then_tensor_mix(self):
        assert_identical(lambda a, b: (2.0 * a - b / 2.0).relu(),
                         arr((3, 4)), arr((3, 4), 1))


_UNARY_OPS = [
    lambda x: x.tanh(), lambda x: x.sigmoid(), lambda x: x.relu(),
    lambda x: x.exp(), lambda x: x.abs(), lambda x: -x,
    lambda x: x.clip(-1.0, 1.0), lambda x: x * 0.5 + 0.25,
    lambda x: F.softplus(x), lambda x: F.gelu(x),
    lambda x: F.leaky_relu(x, 0.2),
]
_BINARY_OPS = [
    lambda a, b: a + b, lambda a, b: a - b, lambda a, b: a * b,
    lambda a, b: a * b + a,
]


def _random_graph(rng, inputs):
    """Compose a random DAG over ``inputs`` and return a scalar loss."""
    pool = list(inputs)
    for _ in range(int(rng.integers(4, 12))):
        roll = rng.random()
        if roll < 0.5:
            op = _UNARY_OPS[int(rng.integers(len(_UNARY_OPS)))]
            pool.append(op(pool[int(rng.integers(len(pool)))]))
        else:
            op = _BINARY_OPS[int(rng.integers(len(_BINARY_OPS)))]
            a = pool[int(rng.integers(len(pool)))]
            b = pool[int(rng.integers(len(pool)))]
            pool.append(op(a, b))
    total = pool[-1].sum()
    for extra in pool[-3:-1]:
        total = total + extra.sum()
    return total


class TestRandomizedGraphs:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_elementwise_dag(self, seed):
        rng = np.random.default_rng(seed)
        shapes = [(4, 5)] * 3
        arrays = [rng.normal(size=s) for s in shapes]

        def fn(*tensors):
            return _random_graph(np.random.default_rng(seed + 1000),
                                 tensors)

        assert_identical(fn, *arrays)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_mlp_like(self, seed):
        rng = np.random.default_rng(100 + seed)
        x = rng.normal(size=(6, 8))
        w1 = rng.normal(size=(5, 8))
        b1 = rng.normal(size=(5,))
        w2 = rng.normal(size=(3, 5))
        targets = rng.integers(0, 3, size=6)

        def fn(xt, w1t, b1t, w2t):
            h = F.linear(xt, w1t, b1t)
            h = h.tanh() if seed % 2 else h.relu()
            return F.cross_entropy(F.linear(h, w2t), targets)

        assert_identical(fn, x, w1, b1, w2)


class TestModelIdentity:
    def _grads(self, model):
        return {n: np.asarray(p.grad).copy()
                for n, p in model.named_parameters()}

    def _assert_model_step(self, build, run_loss, steps=2):
        eager, lazy = build(), build()
        rt = LazyRuntime()
        for _ in range(steps):
            eager.zero_grad()
            loss_e = run_loss(eager)
            loss_e.backward()
            lazy.zero_grad()
            with lazy_mode(runtime=rt):
                loss_l = run_loss(lazy)
                loss_l.backward()
            assert float(loss_e.data) == float(loss_l.data)
            ge, gl = self._grads(eager), self._grads(lazy)
            for name in ge:
                assert np.array_equal(ge[name], gl[name]), (
                    f"grad diverged for {name}")

    def test_mlp_step(self):
        from repro.models.mlp import MLP

        rng = np.random.default_rng(0)
        x = rng.normal(size=(10, 6))
        y = rng.integers(0, 3, size=10)
        self._assert_model_step(
            lambda: MLP([6, 16, 3], seed=5),
            lambda m: F.cross_entropy(m(Tensor(x)), y))

    def test_lstm_lm_step(self):
        from repro.models.lstm_lm import LSTMLanguageModel

        rng = np.random.default_rng(1)
        ids = rng.integers(0, 20, size=(5, 4))
        targets = rng.integers(0, 20, size=(5, 4))
        self._assert_model_step(
            lambda: LSTMLanguageModel(20, embed_dim=8, hidden_size=12,
                                      num_layers=2, seed=7),
            lambda m: m.loss(ids, targets)[0])

    def test_seq2seq_step(self):
        from repro.models.seq2seq import Seq2Seq

        rng = np.random.default_rng(2)
        src = rng.integers(0, 11, size=(4, 3))
        tgt = rng.integers(0, 11, size=(4, 3))
        self._assert_model_step(
            lambda: Seq2Seq(11, embed_dim=6, hidden_size=8, seed=9),
            lambda m: m.loss(src, tgt))

    def test_conv_stack_step(self):
        from repro.nn.conv import Conv2d
        from repro.nn.linear import Linear

        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 3, 8, 8))
        y = rng.integers(0, 4, size=2)

        def build():
            conv = Conv2d(3, 5, 3, padding=1, seed=11)
            head = Linear(5, 4, seed=12)

            class Net:
                def zero_grad(self):
                    conv.zero_grad()
                    head.zero_grad()

                def named_parameters(self):
                    return (list(conv.named_parameters())
                            + list(head.named_parameters()))

                def loss(self):
                    h = F.max_pool2d(conv(Tensor(x)), 2).relu()
                    h = h.mean(axis=(2, 3))
                    return F.cross_entropy(head(h), y)

            return Net()

        self._assert_model_step(build, lambda m: m.loss())


class TestEagerLeafBridge:
    """Eager tensors created *outside* ``lazy_mode`` and consumed by
    recorded ops: each becomes one graph leaf and gets its gradient
    delivered through ``Tensor.backward``.

    When every path from a leaf runs through the lazy graph (the model
    case: parameters consumed via ``F.linear`` / ``F.embedding``),
    the delivered gradient is bit-identical to eager.  When a leaf is
    consumed both by recorded ops *and* by eager tensor methods in the
    same loss (methods on eager tensors intentionally stay eager), the
    leaf accumulates across several tapes, which reorders the float
    additions — values then agree to rounding, not to the bit.
    """

    def test_single_seam_is_bit_identical(self):
        x = arr((6, 4))
        w_data = arr((3, 4), 1)
        b_data = arr((3,), 2)

        def run(use_lazy):
            wt = Tensor(w_data.copy(), requires_grad=True)
            bt = Tensor(b_data.copy(), requires_grad=True)
            if use_lazy:
                with lazy_mode():
                    loss = F.linear(Tensor(x.copy()), wt, bt).tanh().sum()
                    loss.backward()
            else:
                loss = F.linear(Tensor(x.copy()), wt, bt).tanh().sum()
                loss.backward()
            return (float(loss.data), np.asarray(wt.grad).copy(),
                    np.asarray(bt.grad).copy())

        le, we, be = run(False)
        ll, wl, bl = run(True)
        assert le == ll
        assert np.array_equal(we, wl)
        assert np.array_equal(be, bl)

    def test_repeated_consumption_single_leaf_bit_identical(self):
        # one parameter feeding many recorded linear calls: leaf_of
        # memoization keeps it a single graph leaf, one delivery
        x = arr((4, 6))
        w_data = arr((6, 6), 1)

        def run(use_lazy):
            wt = Tensor(w_data.copy(), requires_grad=True)

            def body():
                h = Tensor(x.copy())
                for _ in range(5):
                    h = F.linear(h, wt).tanh()
                return h.sum()

            if use_lazy:
                with lazy_mode():
                    body().backward()
            else:
                body().backward()
            return np.asarray(wt.grad).copy()

        assert np.array_equal(run(False), run(True))

    def test_mixed_tape_close_not_necessarily_exact(self):
        # w consumed by a recorded op (linear) AND by eager methods
        # ((w * w).sum()): two tapes deliver into w.grad, so only
        # rounding-level agreement is guaranteed
        x = arr((5, 4))
        w_data = arr((3, 4), 1)

        def run(use_lazy):
            wt = Tensor(w_data.copy(), requires_grad=True)

            def body():
                return (F.linear(Tensor(x.copy()), wt).sum()
                        + (wt * wt).sum() + wt.sum())

            if use_lazy:
                with lazy_mode():
                    body().backward()
            else:
                body().backward()
            return np.asarray(wt.grad).copy()

        ge, gl = run(False), run(True)
        np.testing.assert_allclose(ge, gl, rtol=1e-14, atol=1e-14)


class TestLazySemantics:
    def test_factory_returns_lazy_inside_mode(self):
        with lazy_mode():
            t = Tensor(np.ones((2, 2)))
            assert isinstance(t, LazyTensor)
        t2 = Tensor(np.ones((2, 2)))
        assert not isinstance(t2, LazyTensor)

    def test_int_data_stays_eager(self):
        with lazy_mode():
            t = Tensor(np.array([1, 2, 3]))
            assert not isinstance(t, LazyTensor)

    def test_no_grad_blocks_lazy_recording(self):
        with lazy_mode():
            with no_grad():
                t = Tensor(np.ones((2, 2)), requires_grad=True)
                out = t * 2.0
                assert not out.requires_grad
            out2 = Tensor(np.ones((2, 2)), requires_grad=True) * 2.0
            assert out2.requires_grad

    def test_detach(self):
        with lazy_mode():
            t = Tensor(np.ones((2, 2)), requires_grad=True)
            d = (t * 2.0).detach()
            assert not d.requires_grad
            np.testing.assert_array_equal(d.data, 2 * np.ones((2, 2)))

    def test_data_read_realizes(self):
        with lazy_mode():
            t = Tensor(np.full((2, 2), 3.0))
            out = t * t
            np.testing.assert_array_equal(out.data, np.full((2, 2), 9.0))

    def test_bool_mask_falls_back_eagerly(self):
        a = arr((4, 4))
        mask = a > 0

        def fn(t):
            return (t[mask] * 2.0).sum()

        assert_identical(fn, a)

    def test_backward_outside_mode(self):
        with lazy_mode():
            t = Tensor(np.ones((3,)), requires_grad=True)
            loss = (t * 3.0).sum()
        loss.backward()
        np.testing.assert_array_equal(t.grad, np.full((3,), 3.0))

    def test_eager_leaf_gets_grad_through_lazy_graph(self):
        leaf = Tensor(arr((3, 3)), requires_grad=True)
        with lazy_mode():
            out = (leaf * 2.0).sum()
            out.backward()
        eager_leaf = Tensor(leaf.data.copy(), requires_grad=True)
        (eager_leaf * 2.0).sum().backward()
        assert np.array_equal(leaf.grad, eager_leaf.grad)

    def test_grad_error_messages_match_eager(self):
        with lazy_mode():
            t = Tensor(np.ones((2, 2)), requires_grad=True)
            out = t * 2.0
            with pytest.raises(RuntimeError):
                out.backward()  # non-scalar without grad

    def test_runtime_stats_accumulate(self):
        rt = LazyRuntime()
        with lazy_mode(runtime=rt):
            t = Tensor(np.ones((4, 4)), requires_grad=True)
            ((t * 2.0).tanh() + 1.0).sum().backward()
        assert rt.stats.realizations >= 1
        assert rt.stats.nodes_recorded > 0
        assert rt.stats.nodes_executed > 0
