"""Trainers: sync loop, async simulator, metrics."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F
from repro import nn
from repro.optim import MomentumSGD, SGD
from repro.sim import (TrainerHooks, classification_accuracy,
                       evaluate_classifier, train_async, train_sync)


def make_problem(seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(32, 3))
    y = (x[:, 0] > 0).astype(int)
    model = nn.Sequential(nn.Linear(3, 8, seed=0), nn.ReLU(),
                          nn.Linear(8, 2, seed=1))

    def loss_fn():
        return F.cross_entropy(model(Tensor(x)), y)

    return model, loss_fn


class TestTrainSync:
    def test_records_losses_and_trains(self):
        model, loss_fn = make_problem()
        opt = MomentumSGD(model.parameters(), lr=0.1, momentum=0.9)
        log = train_sync(model, opt, loss_fn, steps=40)
        losses = log.series("loss")
        assert len(losses) == 40
        assert losses[-1] < losses[0]

    def test_divergence_stops_early(self):
        model, loss_fn = make_problem()
        opt = SGD(model.parameters(), lr=1e9)  # guaranteed blow-up
        log = train_sync(model, opt, loss_fn, steps=200)
        assert "diverged" in log
        assert len(log.series("loss")) < 200

    def test_static_clip_hook(self):
        model, loss_fn = make_problem()
        opt = SGD(model.parameters(), lr=0.1)
        log = train_sync(model, opt, loss_fn, steps=5,
                         hooks=TrainerHooks(grad_clip_norm=1e-9))
        assert "grad_norm" in log
        # with an absurdly small clip the model barely moves
        assert abs(log.series("loss")[0] - log.series("loss")[-1]) < 1e-3

    def test_on_step_callback(self):
        model, loss_fn = make_problem()
        opt = SGD(model.parameters(), lr=0.1)
        calls = []
        train_sync(model, opt, loss_fn, steps=3,
                   hooks=TrainerHooks(on_step=lambda s, log: calls.append(s)))
        assert calls == [0, 1, 2]

    def test_yellowfin_stats_logged(self):
        from repro.core import YellowFin
        model, loss_fn = make_problem()
        opt = YellowFin(model.parameters())
        log = train_sync(model, opt, loss_fn, steps=5)
        assert "lr" in log and "momentum" in log


class TestTrainAsync:
    def test_single_worker_equals_sync(self):
        """workers=1 (staleness 0) must match the sync trainer exactly."""
        model_a, loss_a = make_problem(seed=3)
        opt_a = MomentumSGD(model_a.parameters(), lr=0.1, momentum=0.5)
        log_a = train_sync(model_a, opt_a, loss_a, steps=20)

        model_b, loss_b = make_problem(seed=3)
        opt_b = MomentumSGD(model_b.parameters(), lr=0.1, momentum=0.5)
        log_b = train_async(model_b, opt_b, loss_b, steps=20, workers=1)

        np.testing.assert_allclose(log_a.series("loss"),
                                   log_b.series("loss"), atol=1e-12)

    def test_staleness_delays_updates(self):
        """With M workers the first M-1 losses are computed on the initial
        model (no update has landed yet)."""
        model, loss_fn = make_problem()
        opt = SGD(model.parameters(), lr=0.5)
        log = train_async(model, opt, loss_fn, steps=12, workers=8)
        losses = log.series("loss")
        np.testing.assert_allclose(losses[:7], losses[0])

    def test_async_still_converges(self):
        model, loss_fn = make_problem()
        opt = MomentumSGD(model.parameters(), lr=0.05, momentum=0.3)
        log = train_async(model, opt, loss_fn, steps=150, workers=4)
        losses = log.series("loss")
        assert losses[-1] < losses[0]

    def test_validation(self):
        model, loss_fn = make_problem()
        opt = SGD(model.parameters(), lr=0.1)
        with pytest.raises(ValueError):
            train_async(model, opt, loss_fn, steps=5, workers=0)


class TestMetrics:
    def test_accuracy(self):
        logits = np.array([[2.0, 1.0], [0.0, 3.0], [5.0, 0.0]])
        assert classification_accuracy(logits, np.array([0, 1, 1])) == \
            pytest.approx(2 / 3)

    def test_evaluate_classifier(self):
        model, _ = make_problem()
        rng = np.random.default_rng(1)
        x = rng.normal(size=(20, 3))
        y = (x[:, 0] > 0).astype(int)
        out = evaluate_classifier(model, x, y, batch_size=8)
        assert 0.0 <= out["accuracy"] <= 1.0
        assert out["loss"] > 0.0
        assert model.training  # restored to train mode

    def test_evaluate_lm(self):
        from repro.models import LSTMLanguageModel
        from repro.sim import evaluate_lm
        model = LSTMLanguageModel(vocab_size=12, embed_dim=6, hidden_size=8,
                                  num_layers=1, seed=0)
        tokens = np.random.default_rng(0).integers(0, 12, 400)
        out = evaluate_lm(model, tokens, batch_size=2, seq_len=8)
        assert out["perplexity"] >= 1.0
        assert out["nll"] > 0
