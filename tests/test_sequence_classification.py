"""Sequential-image dataset, LSTM classifier, GRU cell, AMSGrad."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.autograd.grad_check import check_gradients
from repro.data import SequentialImages, make_mnist_like
from repro.models import LSTMClassifier
from repro.optim import Adam, MomentumSGD


class TestSequentialImages:
    def test_shapes(self):
        data = SequentialImages(num_classes=4, size=6, train_size=32,
                                test_size=8, seed=0)
        assert data.x_train.shape == (32, 6, 6)
        assert data.y_train.shape == (32,)

    def test_batch_time_major(self):
        data = make_mnist_like(seed=0, train_size=64)
        rng = np.random.default_rng(0)
        x, y = data.batch(rng, 16)
        assert x.shape == (8, 16, 8)  # (T, N, features)
        assert y.shape == (16,)

    def test_deterministic(self):
        a = make_mnist_like(seed=3, train_size=16)
        b = make_mnist_like(seed=3, train_size=16)
        np.testing.assert_array_equal(a.x_train, b.x_train)


class TestLSTMClassifier:
    def test_forward_shape(self):
        model = LSTMClassifier(input_size=8, hidden_size=12, num_classes=5,
                               seed=0)
        out = model(np.zeros((4, 3, 8)))
        assert out.shape == (3, 5)

    def test_trains_on_sequential_images(self):
        data = make_mnist_like(seed=0, train_size=128)
        model = LSTMClassifier(input_size=8, hidden_size=16, num_classes=10,
                               seed=0)
        rng = np.random.default_rng(0)
        opt = MomentumSGD(model.parameters(), lr=0.5, momentum=0.9)
        losses = []
        for _ in range(60):
            x, y = data.batch(rng, 16)
            model.zero_grad()
            loss = model.loss(x, y)
            loss.backward()
            opt.step()
            losses.append(float(loss.data))
        assert np.mean(losses[-10:]) < 0.7 * np.mean(losses[:10])


class TestGRUCell:
    def test_shapes(self):
        cell = nn.GRUCell(4, 6, seed=0)
        h = cell(Tensor(np.zeros((3, 4))), cell.zero_state(3))
        assert h.shape == (3, 6)

    def test_gradcheck(self):
        cell = nn.GRUCell(3, 4, seed=0)
        state = cell.zero_state(2)
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        check_gradients(lambda a: cell(a, state), [x], atol=1e-4)

    def test_update_gate_interpolates(self):
        """With h_prev fixed, the output lies between candidate and h_prev
        componentwise bounds (|h| <= max(|h_prev|, 1))."""
        cell = nn.GRUCell(2, 3, seed=0)
        h_prev = Tensor(0.5 * np.ones((1, 3)))
        h = cell(Tensor(np.ones((1, 2))), h_prev)
        assert (np.abs(h.data) <= 1.0).all()


class TestAMSGrad:
    def test_converges(self):
        p = Tensor(np.array([3.0, -3.0]), requires_grad=True)
        opt = Adam([p], lr=0.3, amsgrad=True)
        for _ in range(300):
            p.grad = p.data.copy()
            opt.step()
        assert np.abs(p.data).max() < 1e-2

    def test_vmax_monotone(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = Adam([p], lr=0.1, amsgrad=True)
        p.grad = np.array([10.0])
        opt.step()
        vmax_after_big = opt._vmax[0].copy()
        p.grad = np.array([0.01])
        opt.step()
        assert (opt._vmax[0] >= vmax_after_big * 0.999).all()

    def test_differs_from_plain_adam(self):
        rng = np.random.default_rng(0)
        grads = rng.normal(size=(50, 2)) * np.array([10.0, 0.1])
        p1 = Tensor(np.ones(2), requires_grad=True)
        p2 = Tensor(np.ones(2), requires_grad=True)
        plain = Adam([p1], lr=0.1)
        ams = Adam([p2], lr=0.1, amsgrad=True)
        for g in grads:
            p1.grad = g.copy()
            plain.step()
            p2.grad = g.copy()
            ams.step()
        assert not np.allclose(p1.data, p2.data)
