"""Property-based verification of the paper's spectral-radius lemmas."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.operators import (momentum_operator,
                                      momentum_spectral_radius,
                                      spectral_radius, variance_operator,
                                      variance_spectral_radius)

momenta = st.floats(0.001, 0.999)
curvatures = st.floats(1e-3, 1e3)


def robust_lr(h, mu, position):
    """A learning rate inside the robust region for curvature h:
    position in [0, 1] interpolates between the two edges."""
    lo = (1 - np.sqrt(mu)) ** 2 / h
    hi = (1 + np.sqrt(mu)) ** 2 / h
    return lo + position * (hi - lo)


class TestLemma3:
    @given(momenta, curvatures, st.floats(0.0, 1.0))
    @settings(max_examples=300, deadline=None)
    def test_spectral_radius_is_sqrt_mu_in_robust_region(self, mu, h, pos):
        """Lemma 3: anywhere in the robust region, rho(A) = sqrt(mu)."""
        lr = robust_lr(h, mu, pos)
        rho = momentum_spectral_radius(lr, h, mu)
        # At the region edges A has a defective (repeated) eigenvalue, where
        # eigensolver accuracy degrades to ~sqrt(machine eps).
        assert rho == pytest.approx(np.sqrt(mu), rel=1e-5, abs=1e-7)

    @given(momenta, curvatures, st.floats(1.1, 10.0))
    @settings(max_examples=100, deadline=None)
    def test_radius_exceeds_sqrt_mu_above_region(self, mu, h, factor):
        """Above the robust region (lr too big), rho(A) > sqrt(mu)."""
        lr = (1 + np.sqrt(mu)) ** 2 / h * factor
        assert momentum_spectral_radius(lr, h, mu) > np.sqrt(mu) + 1e-12

    @given(momenta, curvatures, st.floats(0.05, 0.9))
    @settings(max_examples=100, deadline=None)
    def test_radius_exceeds_sqrt_mu_below_region(self, mu, h, factor):
        """Below the robust region (lr too small), rho(A) > sqrt(mu)."""
        lr = (1 - np.sqrt(mu)) ** 2 / h * factor
        assert momentum_spectral_radius(lr, h, mu) > np.sqrt(mu) + 1e-12

    def test_zero_momentum_gd_rate(self):
        """mu = 0 reduces to gradient descent: rho = |1 - lr h|."""
        for lr, h in [(0.3, 1.0), (0.5, 2.0), (1.5, 1.0)]:
            assert momentum_spectral_radius(lr, h, 0.0) == pytest.approx(
                abs(1 - lr * h), abs=1e-9)

    def test_figure2_robust_plateau(self):
        """Fig. 2: for h = 1, the plateau of constant rho widens with mu."""
        h = 1.0
        for mu in (0.1, 0.3, 0.5):
            lo, hi = (1 - np.sqrt(mu)) ** 2, (1 + np.sqrt(mu)) ** 2
            lrs = np.linspace(lo, hi, 25)
            rhos = [momentum_spectral_radius(lr, h, mu) for lr in lrs]
            np.testing.assert_allclose(rhos, np.sqrt(mu), rtol=1e-5)
        # wider momentum -> wider plateau
        width = lambda mu: (1 + np.sqrt(mu)) ** 2 - (1 - np.sqrt(mu)) ** 2
        assert width(0.5) > width(0.3) > width(0.1)


class TestLemma6:
    @given(momenta, curvatures, st.floats(0.0, 1.0))
    @settings(max_examples=300, deadline=None)
    def test_variance_radius_is_mu_in_robust_region(self, mu, h, pos):
        """Lemma 6: rho(B) = mu under the same robust-region condition."""
        lr = robust_lr(h, mu, pos)
        rho = variance_spectral_radius(lr, h, mu)
        # 3x3 defective eigenvalues at the edges: ~eps^(1/3) accuracy.
        assert rho == pytest.approx(mu, rel=1e-4, abs=1e-5)

    @given(momenta, curvatures, st.floats(1.2, 10.0))
    @settings(max_examples=100, deadline=None)
    def test_variance_radius_grows_outside(self, mu, h, factor):
        lr = (1 + np.sqrt(mu)) ** 2 / h * factor
        assert variance_spectral_radius(lr, h, mu) > mu + 1e-12


class TestOperatorStructure:
    def test_momentum_operator_entries(self):
        a = momentum_operator(lr=0.1, curvature=2.0, momentum=0.5)
        np.testing.assert_allclose(a, [[1 - 0.2 + 0.5, -0.5], [1.0, 0.0]])

    def test_variance_operator_entries(self):
        m = 1 - 0.1 * 2.0 + 0.5
        b = variance_operator(lr=0.1, curvature=2.0, momentum=0.5)
        np.testing.assert_allclose(
            b, [[m * m, 0.25, -2 * 0.5 * m], [1, 0, 0], [m, 0, -0.5]])

    def test_spectral_radius_diagonal(self):
        assert spectral_radius(np.diag([0.5, -3.0])) == pytest.approx(3.0)

    def test_bias_iteration_matches_explicit_recursion(self):
        """A^t applied to the state must equal unrolling eq. (1) means."""
        lr, h, mu = 0.2, 1.5, 0.4
        a = momentum_operator(lr, h, mu)
        x_prev = x = 3.0
        state = np.array([x, x_prev])
        for _ in range(25):
            state = a @ state
            x_next = x - lr * h * x + mu * (x - x_prev)
            x_prev, x = x, x_next
            assert state[0] == pytest.approx(x, rel=1e-12)
