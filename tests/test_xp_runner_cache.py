"""Runner determinism, parallel-equals-serial, and the result cache."""

import pytest

from repro.xp import (Matrix, ParallelRunner, ResultCache, ScenarioSpec,
                      run_scenario)
from repro.xp import runner as runner_mod


def small_matrix(reads=40):
    base = ScenarioSpec(name="m", workload="toy_classifier",
                        workload_params={"samples": 64, "features": 4,
                                         "hidden": 8, "batch_size": 16},
                        optimizer="momentum_sgd",
                        optimizer_params={"lr": 0.05, "momentum": 0.9},
                        workers=4, num_shards=2, reads=reads, seed=0,
                        smooth=10)
    return Matrix(base, axes={
        "delay": {
            "const": {"delay": {"kind": "constant", "delay": 1.0}},
            "uniform": {"delay": {"kind": "uniform", "low": 0.5,
                                  "high": 1.5, "seed": 3}},
        },
        "opt": {
            "sgd": {},
            "adam": {"optimizer": "adam",
                     "optimizer_params": {"lr": 0.01}},
        }})


class TestRunScenario:
    def test_pure_function_of_spec(self):
        s = small_matrix().expand()[0]
        a, b = run_scenario(s), run_scenario(s)
        assert a.identity() == b.identity()
        assert a.metrics["final_loss"] == b.metrics["final_loss"]

    def test_metrics_shape(self):
        s = small_matrix().expand()[0]
        result = run_scenario(s)
        for key in ("initial_loss", "final_loss", "min_loss", "reads",
                    "updates", "diverged", "staleness_mean",
                    "staleness_max"):
            assert key in result.metrics, key
        assert result.metrics["reads"] == 40
        assert result.metrics["diverged"] == 0.0
        assert result.series["loss"], "requested series missing"
        assert result.spec_hash == s.content_hash()
        assert result.env["seed"] == s.resolved_seed()

    def test_faulty_scenario_runs_and_counts(self):
        s = ScenarioSpec(
            name="faulty", reads=60, seed=1, workers=4,
            workload_params={"samples": 64, "features": 4, "hidden": 8},
            optimizer_params={"lr": 0.05},
            optimizer="momentum_sgd",
            faults={"scheduled": [{"kind": "crash", "worker": 0,
                                   "time": 5.0, "downtime": 3.0}]},
            record_series=("loss", "crash"))
        result = run_scenario(s)
        assert result.series["crash"], "scheduled crash never fired"
        assert result.metrics["diverged"] == 0.0

    def test_derived_seed_used_when_unset(self):
        s = ScenarioSpec(name="noseed", reads=30,
                         workload_params={"samples": 64, "features": 4,
                                          "hidden": 8})
        a, b = run_scenario(s), run_scenario(s)
        assert a.identity() == b.identity()
        assert a.env["seed"] == s.resolved_seed()


class TestParallelEqualsSerial:
    def test_four_processes_bit_identical_to_serial(self):
        specs = small_matrix().expand()
        serial = ParallelRunner(processes=1).run(specs)
        parallel = ParallelRunner(processes=4).run(specs)
        assert [r.identity() for r in serial] == \
            [r.identity() for r in parallel]

    def test_order_preserved(self):
        specs = small_matrix().expand()
        results = ParallelRunner(processes=4).run(specs)
        assert [r.name for r in results] == [s.name for s in specs]

    def test_duplicate_specs_computed_once(self, monkeypatch):
        from repro.run import backends as run_backends

        specs = small_matrix().expand()
        doubled = specs + specs
        calls = []
        real = run_backends.execute_spec

        def counting(spec):
            calls.append(spec.name)
            return real(spec)

        monkeypatch.setattr(run_backends, "execute_spec", counting)
        results = ParallelRunner(processes=1).run(doubled)
        assert len(calls) == len(specs)
        assert [r.identity() for r in results[:len(specs)]] == \
            [r.identity() for r in results[len(specs):]]


class TestResultCache:
    def test_rerun_hits_cache_with_zero_recomputation(self, tmp_path,
                                                      monkeypatch):
        specs = small_matrix().expand()
        cache = ResultCache(tmp_path / "cache")
        runner = ParallelRunner(processes=2, cache=cache)
        first = runner.run(specs)
        assert (runner.hits, runner.misses) == (0, len(specs))
        assert len(cache) == len(specs)

        # second pass must not execute a single scenario
        def forbidden(spec):
            raise AssertionError(
                f"cache miss recomputed {spec.name!r}")

        monkeypatch.setattr(runner_mod, "run_scenario", forbidden)
        rerun_runner = ParallelRunner(processes=1, cache=cache)
        second = rerun_runner.run(specs)
        assert (rerun_runner.hits, rerun_runner.misses) == (len(specs), 0)
        assert all(r.cached for r in second)
        assert [r.identity() for r in first] == \
            [r.identity() for r in second]

    def test_changed_spec_misses(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = small_matrix().expand()
        ParallelRunner(processes=1, cache=cache).run(specs)
        changed = small_matrix(reads=41).expand()
        runner = ParallelRunner(processes=1, cache=cache)
        runner.run(changed)
        assert runner.misses == len(changed)

    def test_replicate_count_is_part_of_the_cache_key(self, tmp_path):
        # regression: a cached single-replicate record must never be
        # served for a replicated run of the same scenario (or between
        # different replicate counts) — the replicate count is part of
        # the content hash
        cache = ResultCache(tmp_path / "cache")
        base = small_matrix().expand()[0]
        replicated = base.with_overrides({"replicates": 2})
        more = base.with_overrides({"replicates": 3})
        assert len({base.content_hash(), replicated.content_hash(),
                    more.content_hash()}) == 3

        runner = ParallelRunner(processes=1, cache=cache)
        runner.run([base])
        assert (runner.hits, runner.misses) == (0, 1)
        runner = ParallelRunner(processes=1, cache=cache)
        runner.run([replicated])
        assert (runner.hits, runner.misses) == (0, 1), \
            "replicated spec was served the scalar record"
        # each variant hits its own entry on rerun
        runner = ParallelRunner(processes=1, cache=cache)
        results = runner.run([base, replicated])
        assert (runner.hits, runner.misses) == (2, 0)
        assert results[0].replicate_metrics == []
        assert len(results[1].replicate_metrics) == 2

    def test_replicates_one_hashes_like_the_legacy_spec(self):
        # replicates=1 is canonicalized away, so pre-existing caches,
        # derived seeds, and committed records stay valid
        spec = small_matrix().expand()[0]
        assert "replicates" not in spec.canonical_json()
        explicit = spec.with_overrides({"replicates": 1})
        assert explicit.content_hash() == spec.content_hash()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = small_matrix().expand()[0]
        result = run_scenario(spec)
        cache.put(spec, result)
        cache.path_for(spec).write_text("{not json")
        assert cache.get(spec) is None

    def test_put_rejects_mismatched_result(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = small_matrix().expand()
        result = run_scenario(specs[0])
        with pytest.raises(ValueError, match="does not match"):
            cache.put(specs[1], result)

    def test_clear_and_keys(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = small_matrix().expand()[0]
        cache.put(spec, run_scenario(spec))
        assert cache.keys() == [spec.content_hash()]
        assert spec in cache
        assert cache.clear() == 1
        assert len(cache) == 0


class TestValidationAndRepr:
    def test_negative_processes_rejected(self):
        with pytest.raises(ValueError):
            ParallelRunner(processes=-1)

    def test_reprs_do_not_crash(self, tmp_path):
        assert "ParallelRunner" in repr(
            ParallelRunner(cache=ResultCache(tmp_path)))
        assert "ResultCache" in repr(ResultCache(tmp_path))
