"""Measurement oracles: CurvatureRange, GradientVariance, DistanceToOpt."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.measurements import (CurvatureRange, DistanceToOpt,
                                     GradientMeasurements, GradientVariance)


class TestCurvatureRange:
    def test_constant_signal(self):
        cr = CurvatureRange(beta=0.9, window=5)
        for _ in range(50):
            cr.update(4.0)
        assert cr.hmax == pytest.approx(4.0, rel=1e-6)
        assert cr.hmin == pytest.approx(4.0, rel=1e-6)

    def test_window_extremes(self):
        cr = CurvatureRange(beta=0.0, window=3)  # beta=0: no smoothing
        for h in [1.0, 9.0, 4.0]:
            cr.update(h)
        assert cr.hmax == pytest.approx(9.0)
        assert cr.hmin == pytest.approx(1.0)
        # 9.0 falls out of the window after 3 more updates
        for h in [4.0, 4.0, 4.0]:
            cr.update(h)
        assert cr.hmax == pytest.approx(4.0)

    @given(st.lists(st.floats(1e-6, 1e6), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_hmax_geq_hmin(self, values):
        """Property: the envelope ordering hmax >= hmin always holds."""
        cr = CurvatureRange(beta=0.9, window=10)
        for v in values:
            cr.update(v)
        assert cr.hmax >= cr.hmin * (1 - 1e-9)

    def test_envelope_growth_limit(self):
        """Eq. (35): a catastrophic spike may only grow the envelope 100x."""
        limited = CurvatureRange(beta=0.0, window=1,
                                 limit_envelope_growth=True)
        unlimited = CurvatureRange(beta=0.0, window=1)
        for cr in (limited, unlimited):
            cr.update(1.0)
            cr.update(1e12)
        assert limited.hmax == pytest.approx(100.0)
        assert unlimited.hmax == pytest.approx(1e12)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            CurvatureRange().update(-1.0)


class TestGradientVariance:
    def test_zero_for_constant_gradient(self):
        gv = GradientVariance(beta=0.9)
        for _ in range(20):
            gv.update(np.array([1.0, -2.0]))
        assert gv.variance == pytest.approx(0.0, abs=1e-12)

    def test_recovers_known_variance(self):
        rng = np.random.default_rng(0)
        gv = GradientVariance(beta=0.999)
        sigma = np.array([0.5, 2.0])
        for _ in range(20000):
            gv.update(np.array([1.0, -1.0]) + sigma * rng.normal(size=2))
        # C = sum of per-coordinate variances = 0.25 + 4.0
        assert gv.variance == pytest.approx(4.25, rel=0.1)

    def test_never_negative(self):
        gv = GradientVariance(beta=0.5)
        gv.update(np.array([1.0]))
        assert gv.variance >= 0.0


class TestDistanceToOpt:
    def test_quadratic_distance_scale(self):
        """On f = (h/2) x^2, ||g|| = h|x| and h_est = ||g||^2, so the
        estimator gives ||g||/h_est = 1/(h|x|)... sanity: constant gradient
        stream of norm g and curvature proxy g^2 yields D = 1/g."""
        d = DistanceToOpt(beta=0.9)
        for _ in range(100):
            d.update(4.0)
        assert d.distance == pytest.approx(1.0 / 4.0, rel=1e-6)

    def test_larger_gradients_mean_smaller_estimate(self):
        d_small = DistanceToOpt()
        d_large = DistanceToOpt()
        for _ in range(30):
            d_small.update(0.1)
            d_large.update(10.0)
        assert d_small.distance > d_large.distance


class TestGradientMeasurements:
    def test_snapshot_fields(self):
        gm = GradientMeasurements(beta=0.9, window=5)
        snap = gm.update([np.array([3.0, 0.0]), np.array([4.0])])
        assert snap.grad_norm == pytest.approx(5.0)
        assert snap.hmax == pytest.approx(25.0, rel=1e-6)
        assert snap.hmin == pytest.approx(25.0, rel=1e-6)

    def test_multi_param_variance_is_summed(self):
        rng = np.random.default_rng(0)
        gm = GradientMeasurements(beta=0.999)
        for _ in range(5000):
            gm.update([rng.normal(size=3), rng.normal(size=2)])
        # 5 unit-variance coordinates
        assert gm.snapshot().variance == pytest.approx(5.0, rel=0.15)
