"""End-to-end integration: full workloads through the public API."""

import numpy as np
import pytest

from repro import Adam, ClosedLoopYellowFin, MomentumSGD, YellowFin, nn
from repro.autograd import Tensor, functional as F
from repro.core import ClosedLoopYellowFin as CLYF
from repro.data import (BatchLoader, SequenceLoader, make_cifar10_like,
                        make_ts_like)
from repro.models import LSTMLanguageModel, make_resnet_cifar10
from repro.nn import LSTM
from repro.sim import evaluate_classifier, train_async, train_sync
from repro.tuning import Workload, run_workload


def image_workload(steps=60):
    def build(seed):
        data = make_cifar10_like(seed=seed, train_size=128, size=8)
        model = make_resnet_cifar10(width=2, blocks_per_stage=1, seed=seed)
        loader = BatchLoader(data.x_train, data.y_train, batch_size=16,
                             seed=seed)

        def loss_fn():
            xb, yb = loader.next_batch()
            return F.cross_entropy(model(xb), yb)

        return model, loss_fn

    return Workload(name="img", build=build, steps=steps, smooth_window=10)


class TestEndToEndImage:
    def test_yellowfin_trains_resnet_and_improves_accuracy(self):
        data = make_cifar10_like(seed=0, train_size=128, size=8)
        model = make_resnet_cifar10(width=2, blocks_per_stage=1, seed=0)
        loader = BatchLoader(data.x_train, data.y_train, batch_size=16,
                             seed=0)
        before = evaluate_classifier(model, data.x_test, data.y_test)
        opt = YellowFin(model.parameters(), window=5, beta=0.99)

        def loss_fn():
            xb, yb = loader.next_batch()
            return F.cross_entropy(model(xb), yb)

        log = train_sync(model, opt, loss_fn, steps=120)
        after = evaluate_classifier(model, data.x_test, data.y_test)
        assert log.series("loss")[-1] < log.series("loss")[0]
        assert after["accuracy"] > before["accuracy"]

    def test_all_optimizers_run_same_workload(self):
        for factory in (lambda p: YellowFin(p, window=5, beta=0.99),
                        lambda p: Adam(p, lr=1e-2),
                        lambda p: MomentumSGD(p, lr=0.1, momentum=0.9)):
            result = run_workload(image_workload(40), factory, "opt",
                                  seeds=(0,))
            assert result.losses[-1] < result.losses[0]


class TestEndToEndText:
    def test_yellowfin_lstm_lm_reduces_perplexity(self):
        corpus = make_ts_like(seed=0, length=3000)
        train_tokens, _ = corpus.split(0.9)
        model = LSTMLanguageModel(vocab_size=corpus.vocab_size, embed_dim=8,
                                  hidden_size=16, num_layers=1, seed=0)
        loader = SequenceLoader(train_tokens, batch_size=4, seq_len=8)
        opt = YellowFin(model.parameters(), window=5, beta=0.99)
        state = [None]

        def loss_fn():
            ids, targets = loader.next_batch()
            loss, new_state = model.loss(ids, targets, state[0])
            state[0] = LSTM.detach_state(new_state)
            return loss

        log = train_sync(model, opt, loss_fn, steps=150)
        losses = log.series("loss")
        assert losses[-10:].mean() < 0.9 * losses[:10].mean()


class TestEndToEndAsync:
    def test_closed_loop_yellowfin_async_trains(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(128, 6))
        y = (x[:, 0] + x[:, 1] > 0).astype(int)
        model = nn.Sequential(nn.Linear(6, 12, seed=0), nn.ReLU(),
                              nn.Linear(12, 2, seed=1))
        loader = BatchLoader(x, y, batch_size=16, seed=0)
        opt = ClosedLoopYellowFin(model.parameters(), staleness=7,
                                  window=5, beta=0.99)

        def loss_fn():
            xb, yb = loader.next_batch()
            return F.cross_entropy(model(Tensor(xb)), yb)

        log = train_async(model, opt, loss_fn, steps=300, workers=8)
        losses = log.series("loss")
        assert losses[-20:].mean() < 0.7 * losses[:20].mean()
        assert "total_momentum" in log


class TestSeedStability:
    def test_multi_seed_curves_are_finite_and_close(self):
        """The paper reports 0.05%-0.6% normalized std over 3 seeds; at our
        scale we check the three seed curves end within a modest band."""
        result = run_workload(image_workload(50),
                              lambda p: YellowFin(p, window=5, beta=0.99),
                              "yf", seeds=(0, 1, 2))
        assert len(result.logs) == 3
        finals = [log.series("loss")[-1] for log in result.logs]
        assert np.isfinite(finals).all()
        mean = np.mean(finals)
        assert np.std(finals) / mean < 1.0  # same order across seeds
