"""Public-API snapshot: exported symbols locked against a committed file.

The unified execution API makes ``repro``'s public surface a contract:
downstream code resolves components by name and imports entry points
from stable locations.  This test renders the exported symbols of the
public packages into a canonical text form and compares it to the
committed ``tests/api_surface.txt`` — any accidental export, rename,
or removal fails tier-1 with a diff instead of shipping silently.

To intentionally change the surface, regenerate the snapshot and
commit it together with the change::

    PYTHONPATH=src python tests/test_api_surface.py --write
"""

import importlib
from pathlib import Path

SNAPSHOT = Path(__file__).resolve().parent / "api_surface.txt"

# the packages whose exports form the public contract; each must
# define __all__ (the snapshot is meaningless over implicit exports)
MODULES = (
    "repro",
    "repro.registry",
    "repro.run",
    "repro.xp",
    "repro.vec",
    "repro.cluster",
    "repro.mp",
    "repro.obs",
    "repro.serve",
    "repro.fleet",
    "repro.lazy",
    "repro.sim",
    "repro.optim",
    "repro.core",
    "repro.bench",
    "repro.tuning",
)


def render_surface() -> str:
    """The current public surface in canonical text form."""
    lines = []
    for name in MODULES:
        module = importlib.import_module(name)
        exported = getattr(module, "__all__", None)
        if exported is None:
            raise AssertionError(
                f"{name} defines no __all__; the public surface must "
                "be explicit to be snapshot-locked")
        for symbol in sorted(exported):
            if not hasattr(module, symbol):
                raise AssertionError(
                    f"{name}.__all__ lists {symbol!r} but the module "
                    "does not define it")
            lines.append(f"{name}.{symbol}")
    return "\n".join(lines) + "\n"


def test_api_surface_matches_committed_snapshot():
    assert SNAPSHOT.is_file(), (
        f"missing {SNAPSHOT}; generate it with "
        "`PYTHONPATH=src python tests/test_api_surface.py --write`")
    current = render_surface()
    committed = SNAPSHOT.read_text()
    if current != committed:
        cur, com = set(current.splitlines()), set(committed.splitlines())
        added = sorted(cur - com)
        removed = sorted(com - cur)
        raise AssertionError(
            "public API surface drifted from tests/api_surface.txt\n"
            f"  added ({len(added)}): {added}\n"
            f"  removed ({len(removed)}): {removed}\n"
            "intentional? regenerate with `PYTHONPATH=src python "
            "tests/test_api_surface.py --write` and commit the diff")


if __name__ == "__main__":
    import sys

    if "--write" in sys.argv:
        SNAPSHOT.write_text(render_surface())
        print(f"wrote {SNAPSHOT}")
    else:
        print(render_surface(), end="")
