"""Legacy setup shim so `pip install -e . --no-use-pep517` works in offline
environments whose setuptools lacks wheel support."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.22", "scipy>=1.8"],
    entry_points={
        "console_scripts": ["repro=repro.cli:console_main"],
    },
)
